"""Work-unit accounting.

Functions in this library execute for real (a DFA actually scans packet
payloads, DEFLATE actually emits Huffman codes).  While doing so they count
*work units* — architecture-neutral operation tallies such as "bytes
scanned by the DFA" or "modular multiplies".  A hardware platform model
then prices each unit kind in cycles; that is where Xeon-vs-A72 and
ISA-extension differences live (see ``repro/calibration.py``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping


class WorkUnits:
    """A tally of operation counts by kind (a thin typed Counter)."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[str, float] = ()):  # type: ignore[assignment]
        self._counts: Dict[str, float] = dict(counts) if counts else {}
        for kind, count in self._counts.items():
            if count < 0:
                raise ValueError(f"negative work count for {kind!r}: {count}")

    def add(self, kind: str, count: float = 1.0) -> "WorkUnits":
        if count < 0:
            raise ValueError(f"negative work count for {kind!r}: {count}")
        self._counts[kind] = self._counts.get(kind, 0.0) + count
        return self

    def merge(self, other: "WorkUnits") -> "WorkUnits":
        for kind, count in other.items():
            self.add(kind, count)
        return self

    def get(self, kind: str) -> float:
        return self._counts.get(kind, 0.0)

    def items(self) -> Iterator:
        return iter(self._counts.items())

    def kinds(self):
        return self._counts.keys()

    def scaled(self, factor: float) -> "WorkUnits":
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return WorkUnits({kind: count * factor for kind, count in self._counts.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkUnits):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"WorkUnits({inner})"

    def total(self) -> float:
        return sum(self._counts.values())
