"""Queueing resources built on the event kernel.

`Resource` models a pool of identical servers (e.g. the 8 cores of the
BlueField-2 CPU) with a FIFO request queue.  `Store` is an unbounded or
bounded FIFO buffer of items (e.g. the staging buffer between the SNIC CPU
and the REM accelerator).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, Simulator, SimulationError


class Request(Event):
    """A pending claim on a `Resource`; fires when a server is granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """A FIFO multi-server resource.

    Usage inside a process::

        request = resource.request()
        yield request
        yield sim.timeout(service_time)
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        # busy-time accounting for utilization metrics
        self._busy_area = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean fraction of servers busy since t=0 (or over ``elapsed``)."""
        self._account()
        horizon = elapsed if elapsed is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return self._busy_area / (horizon * self.capacity)

    def reset_utilization(self) -> None:
        self._account()
        self._busy_area = 0.0

    def request(self) -> Request:
        request = Request(self)
        if self._in_use < self.capacity and not self._waiting:
            self._account()
            self._in_use += 1
            request.trigger(self)
        else:
            self._waiting.append(request)
        return request

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        self._account()
        if self._waiting:
            # hand the server straight to the next waiter
            self._waiting.popleft().trigger(self)
        else:
            self._in_use -= 1


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put`` returns an event that fires once the item is accepted (always
    immediately for unbounded stores); ``get`` returns an event that fires
    with the next item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        if capacity < 1:
            raise SimulationError("store capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying blocked items

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        if self._getters:
            self._getters.popleft().trigger(item)
            event.trigger(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.trigger(None)
        else:
            event._value = item  # park the item on the blocked put
            self._putters.append(event)
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                blocked = self._putters.popleft()
                self._items.append(blocked.value)
                blocked._value = None
                blocked.trigger(None)
            event.trigger(item)
        else:
            self._getters.append(event)
        return event
