"""Hybrid analytic/simulation probe-engine selection and trust regions.

The measurement layer can answer a rate probe two ways: run the queueing
kernels (:mod:`repro.core.queueing`) or predict the outcome analytically
(:mod:`repro.core.analytic` M/G/1 / batch models).  The *hybrid* engine
uses the analytic answer only inside a **trust region** — a load range
whose edges have been spot-checked by real simulations that agreed with
the analytic prediction within tolerance — and always simulates near the
saturation knee, so every reported verdict stays simulation-backed
(DESIGN.md "Hybrid probe engine").

Trust regions are content-addressed: the cache key hashes the queueing
model's actual inputs (service moments, cores, caps, RTT floor, seed,
request count), so perturbed calibrations — the sensitivity study and
TCO strategy-1 mutate stack costs in place — can never reuse a record
validated against different physics.

Engine selection is process-global, mirroring the cache and trace
layers: the CLI calls :func:`configure_engine` once, workers receive the
resolved mode inside their work-unit args so fan-out never depends on
inherited globals.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

ENGINE_HYBRID = "hybrid"
ENGINE_SIM = "sim"
ENGINES = (ENGINE_HYBRID, ENGINE_SIM)
# The validated fast path is the default; ``--engine sim`` restores the
# pure-simulation behaviour (byte-identical to the pre-hybrid output).
DEFAULT_ENGINE = ENGINE_HYBRID


@dataclass(frozen=True)
class HybridConfig:
    """Tolerances of the validated analytic fast path.

    ``sim_window_lo``/``sim_window_hi`` bound the ladder load factors
    (offered rate / analytic capacity anchor) that are *always*
    simulated — the knee window.  Rungs below the window are eligible
    for analytic acceptance, rungs above for analytic rejection, but
    only after the window-edge simulations agreed with the analytic
    prediction (see ``measurement._knee_hybrid``).

    ``rate_margin`` shrinks the trusted region when the sweep answers
    ad-hoc rates analytically: a rate must clear the validated edge by
    this relative margin before the simulation is skipped.

    ``p99_tolerance`` is the maximum relative |sim - analytic| p99
    disagreement at the low spot-check under which analytic *latency*
    is trusted; it only ever gates SLO-bounded probes — throughput
    acceptance never relies on an analytic latency.
    """

    sim_window_lo: float = 0.78
    sim_window_hi: float = 1.12
    rate_margin: float = 0.02
    p99_tolerance: float = 0.35


@dataclass
class TrustRecord:
    """One (model, seed, fidelity)'s validated analytic trust region.

    ``low_factor`` is the highest load factor at which a simulation
    confirmed the analytic *accept* (None: analytic acceptance is not
    trusted and sub-window rungs must be simulated); ``high_factor`` the
    lowest factor with a confirmed analytic *reject*.  ``p99_rel_err``
    records the relative p99 disagreement at the low spot-check and
    ``p99_trusted`` whether it fell inside ``p99_tolerance``.
    """

    anchor_rps: float
    low_factor: Optional[float] = None
    high_factor: Optional[float] = None
    p99_trusted: bool = False
    p99_rel_err: float = float("inf")


_active_engine: str = DEFAULT_ENGINE
_config: HybridConfig = HybridConfig()


def configure_engine(mode: Optional[str]) -> str:
    """Set the process-wide probe engine (None keeps the current one)."""
    global _active_engine
    if mode is not None:
        _active_engine = _validated(mode)
    return _active_engine


def active_engine() -> str:
    return _active_engine


def resolve_engine(mode: Optional[str]) -> str:
    """An explicit engine argument, or the process default."""
    if mode is None:
        return _active_engine
    return _validated(mode)


def config() -> HybridConfig:
    return _config


def _validated(mode: str) -> str:
    if mode not in ENGINES:
        raise ValueError(
            f"unknown probe engine {mode!r} (expected one of {ENGINES})")
    return mode


@contextmanager
def engine_scope(mode: str):
    """Temporarily switch the process engine (tests and comparisons)."""
    global _active_engine
    previous = _active_engine
    _active_engine = _validated(mode)
    try:
        yield
    finally:
        _active_engine = previous
