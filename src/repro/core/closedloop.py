"""Closed-loop load generation.

fio (`iodepth`) and perftest keep a fixed number of requests outstanding
rather than offering an open-loop rate: a completion immediately issues
the next request.  Closed loops cannot overload a server — they trade
throughput against latency along Little's law (X = W / R) — which is why
the paper's fio throughput saturates at the device limit while its tail
latency stays bounded.

`simulate_closed_loop` runs a W-outstanding client against a FIFO
``cores``-server station and reports both sides of that trade-off.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .queueing import ServiceSampler


@dataclass
class ClosedLoopResult:
    outstanding: int
    completed: int
    duration_s: float
    throughput_rps: float
    mean_latency_s: float
    p99_latency_s: float

    def littles_law_error(self) -> float:
        """|W - X*R| / W — how far the run is from Little's law (should be
        ~0 up to warmup effects)."""
        implied = self.throughput_rps * self.mean_latency_s
        return abs(self.outstanding - implied) / self.outstanding


def simulate_closed_loop(
    outstanding: int,
    cores: int,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    think_time_s: float = 0.0,
) -> ClosedLoopResult:
    """W requests always in flight against a ``cores``-server FIFO.

    ``think_time_s`` models client-side gap between a completion and the
    next issue (0 = fio-style back-to-back).
    """
    if outstanding < 1:
        raise ValueError("need at least one outstanding request")
    if cores < 1:
        raise ValueError("need at least one server")
    services = np.asarray(service_sampler(rng, n_requests), dtype=float)

    # Event-free simulation: track per-core free times and issue times.
    core_free = [0.0] * cores
    heapq.heapify(core_free)
    # completion times of the W in-flight requests (drives re-issue)
    in_flight: list = []
    latencies = np.empty(n_requests)
    completed = 0
    issued = 0
    now = 0.0

    while completed < n_requests:
        while issued < n_requests and len(in_flight) < outstanding:
            issue_time = now
            start = max(issue_time, core_free[0])
            finish = start + services[issued]
            heapq.heapreplace(core_free, finish)
            heapq.heappush(in_flight, finish)
            latencies[issued] = finish - issue_time
            issued += 1
        finish = heapq.heappop(in_flight)
        completed += 1
        now = finish + think_time_s

    duration = float(now)
    kept = latencies[n_requests // 10:]  # trim warmup
    return ClosedLoopResult(
        outstanding=outstanding,
        completed=completed,
        duration_s=duration,
        throughput_rps=completed / duration if duration > 0 else 0.0,
        mean_latency_s=float(np.mean(kept)),
        p99_latency_s=float(np.percentile(kept, 99)),
    )
