"""Closed-form queueing estimators used to warm-start rate sweeps.

A rate sweep (`core.sweep.find_max_sustainable_rate`) probes a simulator
at a sequence of offered rates; each probe is cheap but not free, and a
cold search spends most of its probes discovering the order of magnitude
of the answer.  Standard queueing theory predicts that answer well
enough to start the search within a few percent of it:

* **M/M/c** (Erlang C): a ``cores``-way RSS-sharded CPU platform at
  offered rate R is c independent M/G/1 shards; the aggregate behaves
  like an M/M/c system whose waiting probability and mean wait have the
  classic closed forms.
* **M/G/1** (Pollaczeck–Khinchine): one shard with a general service
  distribution (mean + squared coefficient of variation) has an exact
  mean wait and a well-known exponential tail approximation, which
  gives an analytic p99 — good enough to bracket SLO-constrained
  sweeps.

These are *estimators*: the sweep still verifies every reported number
by simulation.  The estimate only decides where probing starts, so a
bad estimate costs extra probes, never a wrong answer (see
``find_max_sustainable_rate(warm_start=...)``).
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "erlang_c",
    "mmc_wait_mean",
    "mg1_wait_mean",
    "mg1_sojourn_p99",
    "sharded_capacity",
    "batch_capacity",
    "slo_capacity",
]


def erlang_c(servers: int, offered_load: float) -> float:
    """P(wait > 0) in an M/M/c system (Erlang's C formula).

    ``offered_load`` is a = lambda / mu in Erlangs; requires a < servers
    (a stable system).  Computed with the usual recurrence on the
    Erlang-B blocking probability to stay numerically stable for large
    ``servers``.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if offered_load >= servers:
        return 1.0
    # Erlang B via the stable recurrence B(0) = 1,
    # B(k) = a B(k-1) / (k + a B(k-1)).
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_wait_mean(rate: float, service_mean: float, servers: int) -> float:
    """Mean queueing wait (seconds) of an M/M/c system; inf if unstable."""
    if rate <= 0:
        return 0.0
    offered = rate * service_mean
    if offered >= servers:
        return float("inf")
    wait_probability = erlang_c(servers, offered)
    return wait_probability * service_mean / (servers - offered)


def mg1_wait_mean(rate: float, service_mean: float, service_scv: float) -> float:
    """Pollaczek–Khinchine mean wait of an M/G/1 queue; inf if unstable.

    ``service_scv`` is the squared coefficient of variation
    Var[S] / E[S]^2 (0 deterministic, 1 exponential).
    """
    rho = rate * service_mean
    if rho >= 1.0:
        return float("inf")
    return rho * service_mean * (1.0 + service_scv) / (2.0 * (1.0 - rho))


def mg1_sojourn_p99(rate: float, service_mean: float, service_scv: float) -> float:
    """Approximate p99 sojourn of an M/G/1 queue (seconds).

    Uses the standard exponential-tail approximation
    P(W > t) ~= rho * exp(-t / (W_mean / rho)) with the P-K mean wait,
    plus the mean service.  An estimator for sweep warm starts, not a
    reported number.
    """
    rho = rate * service_mean
    if rho >= 1.0:
        return float("inf")
    if rho <= 0.0:
        return service_mean
    wait_mean = mg1_wait_mean(rate, service_mean, service_scv)
    tail = 0.01
    if rho <= tail:
        return service_mean
    wait_p99 = (wait_mean / rho) * math.log(rho / tail)
    return service_mean + max(wait_p99, 0.0)


def sharded_capacity(service_mean: float, cores: int) -> float:
    """Saturation rate of ``cores`` RSS-sharded servers (requests/s)."""
    if service_mean <= 0:
        raise ValueError("service_mean must be positive")
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return cores / service_mean


def batch_capacity(setup_time: float, per_item_time: float, max_batch: int) -> float:
    """Saturation rate of a batch engine running full batches.

    At saturation every batch is full, so the setup cost amortizes over
    ``max_batch`` items: rate = 1 / (per_item + setup / max_batch).
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    denominator = per_item_time + setup_time / max_batch
    if denominator <= 0:
        raise ValueError("degenerate batch timing")
    return 1.0 / denominator


def slo_capacity(
    service_mean: float,
    service_scv: float,
    cores: int,
    slo_p99: Optional[float],
    floor_fraction: float = 1e-3,
) -> float:
    """Highest rate whose *analytic* p99 sojourn meets ``slo_p99``.

    Bisects the monotone M/G/1 tail approximation per shard (offered
    rate splits evenly over ``cores``).  With no SLO this is just the
    stability capacity.  Pure arithmetic — no simulation probes.
    """
    capacity = sharded_capacity(service_mean, cores)
    if slo_p99 is None:
        return capacity
    if mg1_sojourn_p99(capacity * floor_fraction / cores, service_mean,
                       service_scv) > slo_p99:
        # Even a near-idle system misses the SLO (service itself is too
        # slow); report the floor so the sweep can verify and give up.
        return capacity * floor_fraction
    lo, hi = capacity * floor_fraction, capacity
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if mg1_sojourn_p99(mid / cores, service_mean, service_scv) <= slo_p99:
            lo = mid
        else:
            hi = mid
    return lo
