#!/usr/bin/env python3
"""Offload survey: Fig. 4 for a function portfolio + advisor placements.

Walks a portfolio of datacenter functions (the paper's Table 3), measures
host-vs-SNIC operating points, and asks the Strategy-2 advisor where each
function should run under a latency SLO — the decision workflow the paper
argues operators need.

Usage::

    python examples/offload_survey.py [slo_p99_us]    # default 500 us
"""

import sys

from repro.core.rng import RandomStreams
from repro.experiments import get_profile, run_fig4
from repro.offload import recommend

PORTFOLIO = (
    "redis:a",
    "nat:10k",
    "bm25:1k",
    "mica:32",
    "fio:read",
    "crypto:sha1",
    "rem:file_image",
    "rem:file_executable",
    "compression:txt",
)


def main() -> None:
    slo_us = float(sys.argv[1]) if len(sys.argv) > 1 else 500.0
    slo = slo_us * 1e-6
    print(f"measuring {len(PORTFOLIO)} functions (SLO: p99 <= {slo_us:.0f} us)\n")

    rows = run_fig4(keys=PORTFOLIO, samples=200, n_requests=10_000,
                    streams=RandomStreams(4))

    header = (
        f"{'function':<22} {'T ratio':>8} {'p99 ratio':>9} "
        f"{'advisor placement':<14} {'reason'}"
    )
    print(header)
    print("-" * 100)
    offloaded = 0
    for row in rows:
        decision = recommend(
            get_profile(row.key, samples=200),
            required_rps=0.5 * row.host.capacity_rps,
            slo_p99=slo,
        )
        if decision.platform != "host":
            offloaded += 1
        print(
            f"{row.display:<22} {row.throughput_ratio:>8.2f} "
            f"{row.p99_ratio:>9.2f} {decision.platform:<14} {decision.reason}"
        )

    print(
        f"\n{offloaded}/{len(rows)} functions offloaded at this SLO. "
        "Tighten it (e.g. 30 us) and accelerator batching latency starts "
        "disqualifying candidates — Key Observation 4 in action."
    )


if __name__ == "__main__":
    main()
