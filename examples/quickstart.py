#!/usr/bin/env python3
"""Quickstart: should you offload one function to the SmartNIC?

Measures a single benchmark function on the host CPU and on the SNIC
processor (CPU or accelerator, per Table 3), at each platform's maximum
sustainable throughput, and prints the paper's three verdict metrics:
throughput, p99 latency, and system-wide energy efficiency.

Usage::

    python examples/quickstart.py [function]    # default: rem:file_image

Try e.g. ``redis:a``, ``crypto:sha1``, ``compression:txt``, ``fio:read``.
"""

import sys

from repro.core.rng import RandomStreams
from repro.experiments import get_profile, measure_operating_point
from repro.experiments.fig4 import snic_platform_for


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "rem:file_image"
    profile = get_profile(key, samples=200)
    snic_platform = snic_platform_for(profile)
    streams = RandomStreams(1)

    print(f"function : {profile.display} ({profile.notes})")
    print(f"stack    : {profile.stack or 'local'}; "
          f"SNIC platform: {snic_platform}\n")

    host = measure_operating_point(profile, "host", streams)
    snic = measure_operating_point(profile, snic_platform, streams)

    header = f"{'metric':<28} {'host CPU':>14} {'SNIC':>14} {'SNIC/host':>10}"
    print(header)
    print("-" * len(header))
    rows = [
        ("max throughput (req/s)", host.throughput_rps, snic.throughput_rps),
        ("goodput (Gb/s)", host.goodput_gbps, snic.goodput_gbps),
        ("p99 latency (us)", host.p99_latency_s * 1e6, snic.p99_latency_s * 1e6),
        ("server power (W)", host.server_power_w, snic.server_power_w),
        ("(S)NIC power (W)", host.device_power_w, snic.device_power_w),
        ("efficiency (Gb/s/W)", host.energy_efficiency, snic.energy_efficiency),
    ]
    for label, host_value, snic_value in rows:
        ratio = snic_value / host_value if host_value else float("inf")
        print(f"{label:<28} {host_value:>14,.2f} {snic_value:>14,.2f} {ratio:>10.2f}")

    efficiency_ratio = (
        snic.energy_efficiency / host.energy_efficiency
        if host.energy_efficiency
        else float("inf")
    )
    print()
    if efficiency_ratio > 1.1:
        print(f"verdict: offloading {key} improves energy efficiency "
              f"{efficiency_ratio:.1f}x — a good SNIC candidate.")
    elif efficiency_ratio > 0.9:
        print(f"verdict: offloading {key} is roughly energy-neutral "
              f"({efficiency_ratio:.2f}x); decide on host-core savings.")
    else:
        print(f"verdict: keep {key} on the host — offloading costs "
              f"{1/efficiency_ratio:.1f}x in energy efficiency "
              "(Key Observation 5).")


if __name__ == "__main__":
    main()
