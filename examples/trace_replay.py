#!/usr/bin/env python3
"""The SLO-vs-TCO story (§5): replay a hyperscaler trace through REM.

Reproduces the paper's closing argument end to end:

1. synthesize the Fig. 7 network trace (0.76 Gb/s average, bursty),
2. replay it through the REM function on the host CPU and on the SNIC
   accelerator (Table 4),
3. roll the measured power into the 5-year fleet TCO (Table 5's REM
   column) — and show why the SNIC loses money here despite drawing
   less power, unless the application can tolerate ~3x the p99.

Usage::

    python examples/trace_replay.py
"""

from repro.analysis.tco import compare, format_comparison
from repro.core.rng import RandomStreams
from repro.experiments import format_fig7, format_table4, run_fig7, run_table4


def main() -> None:
    print("=== Fig. 7: the trace ===")
    fig7 = run_fig7(duration_s=3600.0)
    print(format_fig7(fig7))

    print("\n=== Table 4: replaying it through REM ===")
    table4 = run_table4(samples=200, n_requests=10_000, streams=RandomStreams(2))
    print(format_table4(table4))

    p99_penalty = table4.snic.p99_latency_us / table4.host.p99_latency_us
    power_saving = 1 - table4.snic.average_power_w / table4.host.average_power_w
    print(f"\noffloading verdict at trace load: p99 {p99_penalty:.1f}x worse, "
          f"power only {power_saving:.0%} lower (idle dominates, KO5)")

    print("\n=== Table 5 (REM column): 5-year TCO ===")
    comparison = compare(
        "REM",
        snic_power_w=table4.snic.average_power_w,
        nic_power_w=table4.host.average_power_w,
        throughput_ratio_snic_over_host=1.0,
    )
    print(format_comparison([comparison]))
    if comparison.savings_fraction < 0:
        print(
            f"\nthe SNIC's ${comparison.snic_fleet.server_cost_usd - comparison.nic_fleet.server_cost_usd:,.0f} "
            "purchase premium is never recovered at datacenter trace loads — "
            "and the application also eats the p99 hit. This is the paper's "
            "REM conclusion (§5.1-5.2)."
        )


if __name__ == "__main__":
    main()
