#!/usr/bin/env python3
"""What would make the SmartNIC win?  (Strategy 1 + future-SNIC what-ifs)

The paper ends with design strategies rather than measurements: offload
the networking stack (Strategy 1), and — per Key Observation 4 — a more
powerful SNIC CPU "may outperform the host for certain input and batch
sizes".  This example runs both what-ifs against the calibrated models
and prints where today's conclusions flip.

Usage::

    python examples/future_snic.py
"""

from repro.core.rng import RandomStreams
from repro.experiments.sensitivity import format_sensitivity, run_sensitivity
from repro.experiments.strategy1 import format_strategy1, run_strategy1


def main() -> None:
    print("=== Strategy 1: TCP/UDP stack offload (FlexTOE / AccelTCP class) ===\n")
    rows = run_strategy1(samples=150, n_requests=8000, streams=RandomStreams(8))
    print(format_strategy1(rows))

    print("\n=== Future-SNIC designs (Key Observation 4's speculation) ===\n")
    sensitivity = run_sensitivity(samples=150, n_requests=8000,
                                  streams=RandomStreams(9))
    print(format_sensitivity(sensitivity))

    print(
        "\nTakeaways: stack offload is what rescues kernel-bound functions "
        "(Redis, NAT, UDP); more cores + better memory flip the compute-"
        "bound ones (MICA, BM25); faster engines only move the already-"
        "accelerated functions. No single upgrade fixes everything — which "
        "is the paper's closing argument for offload *policy* (Strategy 2) "
        "and load balancing (Strategy 3)."
    )


if __name__ == "__main__":
    main()
