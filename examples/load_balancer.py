#!/usr/bin/env python3
"""Strategy 3: host/SNIC load balancing, CPU-based vs hardware.

The paper's preliminary investigation found that a load balancer running
on the BlueField-2 CPU "consumes most of the SNIC CPU cycles simply to
monitor packets at high rates and cannot redirect packets fast enough to
meet SLO constraints".  This example sweeps offered load over both
implementations and prints where each one breaks.

Usage::

    python examples/load_balancer.py
"""

import numpy as np

from repro.offload import hardware_balancer, simulate_balancer, snic_cpu_balancer

SNIC_SERVICE_S = 1.2e-6  # accelerator-path per-packet time
HOST_SERVICE_S = 0.7e-6  # host fallback per-packet time
SLO_P99_S = 100e-6


def main() -> None:
    rates = [2e6, 4e6, 6e6, 8e6, 10e6, 12e6]
    configs = {
        "snic-cpu balancer": snic_cpu_balancer(SNIC_SERVICE_S, HOST_SERVICE_S),
        "hardware balancer": hardware_balancer(SNIC_SERVICE_S, HOST_SERVICE_S),
    }

    print(f"SLO: p99 <= {SLO_P99_S*1e6:.0f} us\n")
    header = (
        f"{'offered (Mpps)':>14} | "
        + " | ".join(f"{name:^38}" for name in configs)
    )
    sub = (
        f"{'':>14} | "
        + " | ".join(f"{'p99us':>8} {'host%':>6} {'loss%':>6} {'mon.util':>8}    "
                     for _ in configs)
    )
    print(header)
    print(sub)
    print("-" * len(sub))

    violations = {name: None for name in configs}
    for rate in rates:
        cells = []
        for name, config in configs.items():
            outcome = simulate_balancer(
                config, rate, 50_000, np.random.default_rng(int(rate))
            )
            flag = " " if outcome.p99_latency_s <= SLO_P99_S else "!"
            if flag == "!" and violations[name] is None:
                violations[name] = rate
            cells.append(
                f"{outcome.p99_latency_s*1e6:>8.1f} {outcome.host_fraction:>6.1%} "
                f"{outcome.loss_fraction:>6.2%} {outcome.snic_monitor_utilization:>8.1%} {flag}  "
            )
        print(f"{rate/1e6:>14.0f} | " + " | ".join(cells))

    print()
    for name, rate in violations.items():
        if rate is None:
            print(f"{name}: meets the SLO at every tested rate")
        else:
            print(f"{name}: first SLO violation at {rate/1e6:.0f} Mpps")
    print(
        "\nThe CPU-based balancer burns SNIC cores on monitoring and reacts "
        "late, so it violates the SLO well before the hardware design — "
        "the paper's case for hardware-assisted balancing (§5.3)."
    )


if __name__ == "__main__":
    main()
