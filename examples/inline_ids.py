#!/usr/bin/env python3
"""Inline intrusion detection, end to end on the event kernel.

Unlike the measurement experiments (which use the calibrated fast path),
this example runs the *real substrates together*: a UDP client floods a
server over the simulated 100 Gbps link; the server-side IDS — the real
multi-pattern DFA engine compiled from the file_executable rule set —
inspects every datagram; a BMC power sensor samples the server the whole
time. A few packets carry planted shellcode fragments.

Usage::

    python examples/inline_ids.py
"""

import numpy as np

from repro.core import Simulator
from repro.functions.regex.rulesets import load_ruleset
from repro.functions.snort import IntrusionDetector, PacketMeta
from repro.netstack import DuplexChannel, UdpEndpoint, ip
from repro.power import BmcSensor, ComponentLoad, ServerPowerModel
from repro.workloads import gbps_stream, payload_stream

N_PACKETS = 400
SEED_PROBABILITY = 0.02


def main() -> None:
    sim = Simulator()
    rng = np.random.default_rng(42)

    # -- network: client <-> server over 100 GbE ---------------------------
    channel = DuplexChannel(sim)
    client = UdpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
    server = UdpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
    channel.forward.attach(server.deliver)
    channel.backward.attach(client.deliver)

    # -- the IDS ------------------------------------------------------------
    detector = IntrusionDetector.from_named_ruleset("file_executable")
    fragments = load_ruleset("file_executable").seed_fragments
    server_socket = server.bind(53)
    alerts_log = []

    def ids_process():
        for _ in range(N_PACKETS):
            packet = yield server_socket.recv()
            alerts, _ = detector.inspect(
                PacketMeta("udp", packet.dst_port, packet.payload)
            )
            for alert in alerts:
                alerts_log.append((sim.now, packet.packet_id, alert.pattern_id))

    # -- the traffic ----------------------------------------------------------
    schedule = gbps_stream(0.003, 1024, N_PACKETS, rng)  # ~1 s of traffic
    payloads = list(
        payload_stream(schedule, rng, seed_fragments=fragments,
                       seed_probability=SEED_PROBABILITY)
    )

    def client_process():
        client_socket = client.bind(9000)
        start = sim.now
        for index, payload in enumerate(payloads):
            yield sim.timeout(max(0.0, schedule.arrivals[index] - (sim.now - start)))
            packet_payload = payload
            client_socket.sendto(packet_payload, ip(10, 0, 0, 2), 53)

    # -- power observation ---------------------------------------------------
    model = ServerPowerModel()
    load = ComponentLoad(host_busy_cores=1.2)  # one-ish core of IDS work
    trace = BmcSensor(rng=rng).attach(sim, lambda t: model.power(load))

    sim.process(ids_process())
    sim.process(client_process())
    sim.run(until=schedule.duration + 0.01)

    # -- report ---------------------------------------------------------------
    stats = detector.stats
    print(f"packets inspected : {stats.scanned}")
    print(f"alerts raised     : {stats.alerts}")
    seeded = sum(1 for p in payloads if any(f in p for f in fragments))
    print(f"planted payloads  : {seeded}")
    print(f"average power     : {trace.average():.1f} W "
          f"({len(trace)} BMC samples over {schedule.duration:.1f} s)")
    print("\nfirst alerts:")
    for when, packet_id, pattern_id in alerts_log[:5]:
        print(f"  t={when*1e3:8.3f} ms  packet #{packet_id}  "
              f"pattern {pattern_id} "
              f"({load_ruleset('file_executable').patterns[pattern_id][:32]}...)")
    detected_packets = {pid for _, pid, _ in alerts_log}
    print(f"\ndetection: {len(detected_packets)} distinct packets flagged "
          f"out of {seeded} planted — "
          + ("all threats caught." if len(detected_packets) >= seeded
             else "tune the rule set!"))


if __name__ == "__main__":
    main()
