"""Telemetry overhead benchmarks: the metric registry must be free when
idle and cheap when hot.

Mirrors the flight-recorder's ``trace_disabled_overhead`` contract: the
typed registry (repro.obs.metrics) now backs every ``instrument``
counter, so a regression here taxes every experiment.  The gate compares
the same event-kernel workload against the ``event_kernel`` baseline
recorded earlier in this session (or the machine's last
``BENCH_kernel.json``) — run ``test_bench_kernel.py`` first so the
in-session baseline exists.
"""

import json
from pathlib import Path

import pytest
from conftest import _RECORDS, mean_seconds, record_bench

from repro.core import Resource, Simulator
from repro.obs import metrics


def test_metrics_disabled_overhead(benchmark):
    """Registry-backed counters must not tax the untouched hot path.

    Same 2000-job event-kernel workload as
    ``test_event_kernel_throughput``; the kernel itself records nothing
    per event, so routing ``instrument`` through the typed registry must
    leave its cost within noise of the baseline.  Median-vs-median with
    a loose 4x tolerance — a tripwire for accidental per-event metric
    writes, not a microbenchmark.
    """

    def run():
        sim = Simulator()
        core = Resource(sim, capacity=2)

        def job():
            yield core.request()
            yield sim.timeout(1e-6)
            core.release()

        for _ in range(2000):
            sim.process(job())
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired > 0
    stats = benchmark.stats.stats
    median = float(stats.median)
    record_bench("metrics", "metrics_disabled_overhead",
                 seconds_mean=mean_seconds(benchmark),
                 seconds_median=median, rounds=int(stats.rounds),
                 events_fired=int(fired))

    baseline = _RECORDS.get("kernel", {}).get("event_kernel", {})
    if not baseline:
        baseline_path = (Path(__file__).resolve().parent.parent
                         / "BENCH_kernel.json")
        if not baseline_path.exists():
            pytest.skip("no event_kernel baseline recorded on this machine")
        baseline = json.loads(baseline_path.read_text()).get("event_kernel", {})
    reference = baseline.get("seconds_median") or baseline.get("seconds_mean")
    if not reference:
        pytest.skip("baseline lacks event_kernel timings")
    assert median < 4.0 * reference, (
        f"kernel run under the typed registry took {median:.4f}s (median "
        f"of {stats.rounds} rounds) vs baseline {reference:.4f}s — metric "
        f"bookkeeping is leaking into the hot path"
    )


def test_counter_increment_rate(benchmark):
    """Record (not gate) the cost of one registry counter increment."""
    registry = metrics.MetricRegistry()
    counter = registry.counter("bench.counter")

    def run():
        for _ in range(10_000):
            counter.inc()
        return counter.value

    benchmark(run)
    seconds = mean_seconds(benchmark)
    record_bench("metrics", "counter_inc_x10k", seconds_mean=seconds,
                 incs_per_sec=10_000 / seconds if seconds else None)


def test_histogram_observe_rate(benchmark):
    """Record (not gate) the cost of one histogram observation."""
    registry = metrics.MetricRegistry()
    hist = registry.histogram("bench.hist",
                              buckets=metrics.DEFAULT_SECONDS_BUCKETS)

    def run():
        for i in range(10_000):
            hist.observe(1e-4 * (i % 100 + 1))
        return hist.count

    benchmark(run)
    seconds = mean_seconds(benchmark)
    record_bench("metrics", "histogram_observe_x10k", seconds_mean=seconds,
                 observes_per_sec=10_000 / seconds if seconds else None)
