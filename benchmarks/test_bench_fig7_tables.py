"""Benchmarks: regenerate Figure 7 (trace), Table 4 (trace replay), and
Table 5 (TCO)."""

from conftest import run_once

from repro.analysis.tco import format_comparison
from repro.experiments import (
    format_fig7,
    format_table4,
    run_fig7,
    run_table4,
    run_table5,
)


def test_fig7(benchmark):
    result = run_once(benchmark, run_fig7, duration_s=3600.0)
    print()
    print(format_fig7(result))
    print("\npaper Fig. 7: low average (0.76 Gb/s through REM) with bursts")
    assert abs(result.stats["average_gbps"] - 0.76) < 0.01


def test_table4(benchmark, streams):
    result = run_once(benchmark, run_table4, samples=150, n_requests=8000,
                      streams=streams)
    print()
    print(format_table4(result))
    print(
        "\npaper Table 4: 0.76 / 0.76 Gb/s | 5.07 / 17.43 us | "
        "278.30 / 254.50 W"
    )
    assert abs(result.host.average_power_w - 278.3) < 6.0
    assert abs(result.snic.average_power_w - 254.5) < 3.0


def test_table5(benchmark, streams):
    result = run_once(benchmark, run_table5, samples=150, n_requests=8000,
                      streams=streams)
    print()
    print(format_comparison(result.comparisons))
    print("\npaper Table 5 savings: fio 2.7% | OVS 1.7% | REM -2.5% | Compress 70.7%")
    by_app = result.by_application()
    assert by_app["Compress"].savings_fraction > 0.6
    assert by_app["REM"].savings_fraction < 0.0
    assert by_app["fio"].savings_fraction > 0.0
    assert by_app["OVS"].savings_fraction > 0.0
