"""Benchmark for the cluster extension: the 8-node incast study.

Wall-clock for the smoke-tier cluster run (the CI configuration: incast
under ECN and drop-tail on a 2x4 leaf-spine fabric), recorded to
``BENCH_cluster.json``.  The printed table is the experiment's own
formatter output; the assertions pin the headline — ECN keeps incast
out of RTO recovery, drop-tail does not.
"""

from conftest import mean_seconds, record_bench, run_once

from repro.core.rng import RandomStreams
from repro.experiments.cluster import (
    SMOKE_FLOW_BYTES,
    SMOKE_SCENARIOS,
    format_cluster,
    run_cluster_study,
)


def test_cluster_incast_smoke(benchmark):
    study = run_once(
        benchmark, run_cluster_study,
        scenarios=SMOKE_SCENARIOS, flow_bytes=SMOKE_FLOW_BYTES,
        samples=40, n_packets=2_500, streams=RandomStreams(2023),
    )
    print()
    print(format_cluster(study))

    by_label = dict(study.scenarios)
    ecn, droptail = by_label["incast-ecn"], by_label["incast-droptail"]
    assert ecn.completed == ecn.flows
    assert droptail.fct_p99_s > 5 * ecn.fct_p99_s
    record_bench(
        "cluster", "incast_smoke",
        seconds=mean_seconds(benchmark),
        n_nodes=study.n_nodes,
        ecn_fct_p99_s=ecn.fct_p99_s,
        droptail_fct_p99_s=droptail.fct_p99_s,
        ecn_marks=ecn.ecn_marks_seen,
        droptail_drops=droptail.fabric_dropped,
    )
