"""Benchmark: regenerate Figure 4 (normalized throughput & p99, all
functions) and print it next to the paper's reported ranges."""

import os
import time

from conftest import N_REQUESTS, SAMPLES, mean_seconds, record_bench, run_once

from repro.core import instrument
from repro.core.cache import ResultCache, configure
from repro.core.executor import ParallelExecutor, usable_cpu_count
from repro.core.rng import RandomStreams
from repro.experiments import format_fig4, run_fig4

PAPER_NOTES = """
paper Fig. 4 anchors:
  throughput ratio range .......... 0.1x - 3.5x
  p99 ratio range ................. 0.1x - 13.8x
  UDP micro ....................... 76.5-85.7% lower throughput
  RDMA micro ...................... up to 1.4x throughput, 15-24% lower p99
  REM file_image .................. accel 1.8x host
  REM file_flash/executable ....... accel 0.6x host
  AES / RSA ....................... host 1.385x / 1.912x accel
  SHA-1 ........................... accel 1.89x host
  Compression ..................... accel up to 3.5x host
  MICA ............................ 19.5-54.5% lower throughput
  fio ............................. throughput parity
"""


def test_fig4(benchmark, streams):
    configure(ResultCache())
    instrument.reset()
    rows = run_once(benchmark, run_fig4, samples=SAMPLES,
                    n_requests=N_REQUESTS, streams=streams)
    record_bench("fig4", "fig4_full",
                 seconds_mean=mean_seconds(benchmark), rows=len(rows),
                 probes=instrument.value(instrument.PROBES))
    print()
    print(format_fig4(rows))
    print(PAPER_NOTES)
    ratios = [r.throughput_ratio for r in rows]
    assert 0.08 <= min(ratios) <= 0.25
    assert 2.3 <= max(ratios) <= 3.8


# A cheap subset for the parallel harness itself: 2 functions x 2
# platforms = 4 independent work units.  The request count is sized so
# the batch comfortably exceeds the executor's ~50 ms fork threshold on
# a fast runner — the point is to measure the *pool*, not the bypass.
SMOKE_KEYS = ("udp:64", "dpdk:64")
SMOKE_SAMPLES = 40
SMOKE_REQUESTS = 12_000


def test_fig4_parallel_speedup(benchmark):
    """--jobs must never change the rows, and must never slow things down.

    Warm-up runs populate the profile caches and (for the parallel side)
    the worker pool; both sides then take the best of ``ROUNDS`` timed
    runs, so the recorded speedup compares steady states rather than
    one cold run against one warm one.  The executor's serial bypass
    means ``jobs=4`` on a single-core machine degrades to the serial
    path instead of paying pool overhead, so speedup >= ~1.0 must hold
    everywhere; the scaling claim (> 1) only applies with real cores.
    """
    ROUNDS = 5

    def compute(executor):
        configure(ResultCache())  # cold cache: measure simulation, not lookups
        return run_fig4(keys=SMOKE_KEYS, samples=SMOKE_SAMPLES,
                        n_requests=SMOKE_REQUESTS,
                        streams=RandomStreams(7), executor=executor)

    with ParallelExecutor(jobs=4) as parallel_executor:
        serial_executor = ParallelExecutor(jobs=1)
        compute(serial_executor)  # warm-up: profile caches, import costs
        # Warm-up + harness-visible timing for the parallel side (also
        # builds the worker pool and seeds the executor's work estimate).
        parallel_rows = benchmark.pedantic(compute, args=(parallel_executor,),
                                           rounds=1, iterations=1)
        # Interleave the timed rounds so slow clock drift (thermal,
        # noisy CI neighbors) hits both sides alike; take the best of
        # each — the steady-state cost, not the unluckiest run.
        serial_times, parallel_times = [], []
        for _ in range(ROUNDS):
            serial_times.append(_timed(compute, serial_executor))
            parallel_times.append(_timed(compute, parallel_executor))
        serial_seconds = min(serial_times)
        parallel_seconds = min(parallel_times)
        bypasses = parallel_executor.bypasses

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    # The affinity-aware count: a pinned CI runner must not record the
    # machine's cores and then fail the scaling gate it can't reach.
    cores = usable_cpu_count()
    record_bench("fig4", "parallel_speedup", jobs=4, cores=cores,
                 rounds=ROUNDS, serial_seconds=serial_seconds,
                 parallel_seconds=parallel_seconds, speedup=speedup,
                 serial_bypasses=bypasses)

    serial_rows = compute(ParallelExecutor(jobs=1))
    # Identity holds on any machine, regardless of core count.
    assert len(parallel_rows) == len(serial_rows)
    for a, b in zip(serial_rows, parallel_rows):
        assert a.key == b.key
        assert a.host.throughput_rps == b.host.throughput_rps
        assert a.snic.throughput_rps == b.snic.throughput_rps
        assert a.host.metrics.latency_p99 == b.host.metrics.latency_p99
        assert a.snic.metrics.latency_p99 == b.snic.metrics.latency_p99
    if cores >= 2:
        # Parallelism (or, at worst, the bypass) must not cost wall-clock.
        assert speedup >= 1.0, (
            f"expected >=1.0x on {cores} cores, got {speedup:.2f}x")
    if cores >= 4:
        assert speedup >= 1.5, f"expected >=1.5x on {cores} cores, got {speedup:.2f}x"


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start
