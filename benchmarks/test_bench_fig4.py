"""Benchmark: regenerate Figure 4 (normalized throughput & p99, all
functions) and print it next to the paper's reported ranges."""

import os
import time

from conftest import N_REQUESTS, SAMPLES, mean_seconds, record_bench, run_once

from repro.core import instrument
from repro.core.cache import ResultCache, configure
from repro.core.rng import RandomStreams
from repro.experiments import format_fig4, run_fig4

PAPER_NOTES = """
paper Fig. 4 anchors:
  throughput ratio range .......... 0.1x - 3.5x
  p99 ratio range ................. 0.1x - 13.8x
  UDP micro ....................... 76.5-85.7% lower throughput
  RDMA micro ...................... up to 1.4x throughput, 15-24% lower p99
  REM file_image .................. accel 1.8x host
  REM file_flash/executable ....... accel 0.6x host
  AES / RSA ....................... host 1.385x / 1.912x accel
  SHA-1 ........................... accel 1.89x host
  Compression ..................... accel up to 3.5x host
  MICA ............................ 19.5-54.5% lower throughput
  fio ............................. throughput parity
"""


def test_fig4(benchmark, streams):
    configure(ResultCache())
    instrument.reset()
    rows = run_once(benchmark, run_fig4, samples=SAMPLES,
                    n_requests=N_REQUESTS, streams=streams)
    record_bench("fig4", "fig4_full",
                 seconds_mean=mean_seconds(benchmark), rows=len(rows),
                 probes=instrument.value(instrument.PROBES))
    print()
    print(format_fig4(rows))
    print(PAPER_NOTES)
    ratios = [r.throughput_ratio for r in rows]
    assert 0.08 <= min(ratios) <= 0.25
    assert 2.3 <= max(ratios) <= 3.8


# A cheap subset for the parallel harness itself: 2 functions x 2
# platforms = 4 independent work units.
SMOKE_KEYS = ("udp:64", "dpdk:64")
SMOKE_SAMPLES = 40
SMOKE_REQUESTS = 2_000


def test_fig4_parallel_speedup(benchmark):
    """--jobs must never change the rows, and must help on real cores."""

    def compute(jobs):
        configure(ResultCache())  # cold cache: measure simulation, not lookups
        return run_fig4(keys=SMOKE_KEYS, samples=SMOKE_SAMPLES,
                        n_requests=SMOKE_REQUESTS,
                        streams=RandomStreams(7), jobs=jobs)

    serial_start = time.perf_counter()
    serial_rows = compute(1)
    serial_seconds = time.perf_counter() - serial_start

    parallel_rows = benchmark.pedantic(compute, args=(4,), rounds=1,
                                       iterations=1)
    parallel_seconds = mean_seconds(benchmark)
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    cores = os.cpu_count() or 1
    record_bench("fig4", "parallel_speedup", jobs=4, cores=cores,
                 serial_seconds=serial_seconds,
                 parallel_seconds=parallel_seconds, speedup=speedup)

    # Identity holds on any machine, regardless of core count.
    assert len(parallel_rows) == len(serial_rows)
    for a, b in zip(serial_rows, parallel_rows):
        assert a.key == b.key
        assert a.host.throughput_rps == b.host.throughput_rps
        assert a.snic.throughput_rps == b.snic.throughput_rps
        assert a.host.metrics.latency_p99 == b.host.metrics.latency_p99
        assert a.snic.metrics.latency_p99 == b.snic.metrics.latency_p99
    # The speedup claim only makes sense with cores to spread across;
    # single-core CI runners pay pool overhead instead.
    if cores >= 4:
        assert speedup >= 1.5, f"expected >=1.5x on {cores} cores, got {speedup:.2f}x"
