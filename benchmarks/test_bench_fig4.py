"""Benchmark: regenerate Figure 4 (normalized throughput & p99, all
functions) and print it next to the paper's reported ranges."""

from conftest import N_REQUESTS, SAMPLES, run_once

from repro.experiments import format_fig4, run_fig4

PAPER_NOTES = """
paper Fig. 4 anchors:
  throughput ratio range .......... 0.1x - 3.5x
  p99 ratio range ................. 0.1x - 13.8x
  UDP micro ....................... 76.5-85.7% lower throughput
  RDMA micro ...................... up to 1.4x throughput, 15-24% lower p99
  REM file_image .................. accel 1.8x host
  REM file_flash/executable ....... accel 0.6x host
  AES / RSA ....................... host 1.385x / 1.912x accel
  SHA-1 ........................... accel 1.89x host
  Compression ..................... accel up to 3.5x host
  MICA ............................ 19.5-54.5% lower throughput
  fio ............................. throughput parity
"""


def test_fig4(benchmark, streams):
    rows = run_once(benchmark, run_fig4, samples=SAMPLES,
                    n_requests=N_REQUESTS, streams=streams)
    print()
    print(format_fig4(rows))
    print(PAPER_NOTES)
    ratios = [r.throughput_ratio for r in rows]
    assert 0.08 <= min(ratios) <= 0.25
    assert 2.3 <= max(ratios) <= 3.8
