"""Benchmark: regenerate Figure 5 (REM throughput & p99 vs packet rate)."""

from conftest import run_once

from repro.experiments import format_fig5, run_fig5

PAPER_NOTES = """
paper Fig. 5 anchors (MTU packets):
  SNIC accelerator ................ caps at ~50 Gb/s, both rule sets
  host file_executable, 8 cores ... scales to ~78 Gb/s
  host file_image, 8 cores ........ p99 explodes past ~40 Gb/s
  host p99 below the knee ......... ~5.1 us;  accelerator ~25.1 us
"""


def test_fig5(benchmark, streams):
    figure = run_once(benchmark, run_fig5, samples=150, n_requests=8000,
                      streams=streams)
    print()
    print(format_fig5(figure))
    print(PAPER_NOTES)
    for ruleset, curves in figure.items():
        accel = next(c for c in curves if c.platform == "snic-accel")
        assert 40.0 <= accel.max_achieved_gbps() <= 56.0
    exe8 = next(c for c in figure["file_executable"] if c.label == "host-8c")
    assert 68.0 <= exe8.max_achieved_gbps() <= 90.0
