"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation perturbs one model mechanism and shows the paper-relevant
consequence — these are the "why is the model built this way" studies.
"""

import numpy as np
from conftest import run_once

from repro.core.rng import RandomStreams
from repro.core.queueing import outcome_to_metrics, simulate_batch_server
from repro.experiments import get_profile, run_fixed_rate
from repro.experiments.measurement import ACCEL_PLATFORM, measure_operating_point
from repro.offload import hardware_balancer, simulate_balancer, snic_cpu_balancer


def test_ablation_accelerator_batching(benchmark):
    """KO3 mechanics: batch amortization sets the accelerator's capacity;
    without batching the engine would be setup-bound far below 50 Gb/s."""

    def sweep():
        rng = np.random.default_rng(0)
        results = {}
        for batch in (1, 4, 16, 64):
            outcome = simulate_batch_server(
                rate=2e6, n_requests=20_000, rng=rng, batch_size=batch,
                batch_timeout=15e-6, setup_time=2.5e-6, per_item_time=0.21e-6,
            )
            metrics = outcome_to_metrics(outcome, 2e6, bytes_per_request=1534)
            results[batch] = metrics.completed_rate * 1534 * 8 / 1e9
        return results

    results = run_once(benchmark, sweep)
    print(f"\naccelerator goodput vs batch size (Gb/s): "
          + ", ".join(f"{b}->{g:.1f}" for b, g in results.items()))
    assert results[64] > 2.5 * results[1]


def test_ablation_staging_cores(benchmark, streams):
    """§3.4: two SNIC CPU cores stage REM buffers; one is not enough at
    MTU rates to keep the engine fed."""
    from dataclasses import replace

    from repro.calibration import ACCELERATORS, AcceleratorCalibration

    def sweep():
        profile = get_profile("rem:file_executable@mtu", samples=100)
        base = ACCELERATORS["rem"]
        results = {}
        for cores in (1, 2, 4):
            ACCELERATORS["rem"] = replace(base, staging_cores=cores)
            try:
                point = measure_operating_point(
                    profile, ACCEL_PLATFORM, RandomStreams(17), 8000
                )
                results[cores] = point.goodput_gbps
            finally:
                ACCELERATORS["rem"] = base
        return results

    results = run_once(benchmark, sweep)
    print("\nREM accel goodput vs staging cores (Gb/s): "
          + ", ".join(f"{c}->{g:.1f}" for c, g in results.items()))
    assert results[2] >= results[1]


def test_ablation_load_balancer_threshold(benchmark):
    """Strategy 3: the redirect threshold trades SNIC residency for tail
    latency."""

    def sweep():
        rng_seed = 3
        results = {}
        for threshold in (10e-6, 50e-6, 200e-6):
            config = hardware_balancer(1.2e-6, 0.7e-6,
                                       redirect_threshold_s=threshold)
            outcome = simulate_balancer(config, 8e6, 40_000,
                                        np.random.default_rng(rng_seed))
            results[threshold] = (outcome.host_fraction, outcome.p99_latency_s)
        return results

    results = run_once(benchmark, sweep)
    print("\nthreshold -> (host fraction, p99 us): " + ", ".join(
        f"{t*1e6:.0f}us->({h:.2f}, {p*1e6:.0f})" for t, (h, p) in results.items()
    ))
    fractions = [h for h, _ in results.values()]
    assert fractions == sorted(fractions, reverse=True)


def test_ablation_monitoring_cost(benchmark):
    """Strategy 3: sweeping the per-packet monitoring cost shows where a
    CPU-based balancer stops being viable."""

    def sweep():
        results = {}
        for cycles in (0, 300, 600, 1200):
            config = snic_cpu_balancer(1.2e-6, 0.7e-6,
                                       monitor_cost_s=cycles / 2.0e9)
            outcome = simulate_balancer(config, 9e6, 40_000,
                                        np.random.default_rng(5))
            results[cycles] = outcome.p99_latency_s
        return results

    results = run_once(benchmark, sweep)
    print("\nmonitor cycles -> p99 us: " + ", ".join(
        f"{c}->{p*1e6:.0f}" for c, p in results.items()
    ))
    assert results[1200] > results[0]


def test_ablation_kernel_stack_share(benchmark, streams):
    """KO1 mechanics: the SNIC's Redis deficit is the TCP stack, not the
    KV work — with the stack cost removed (DPDK-style user stack), the
    gap shrinks dramatically."""
    from dataclasses import replace

    def sweep():
        profile = get_profile("redis:a", samples=100)
        kernel = {
            p: measure_operating_point(profile, p, RandomStreams(19), 8000)
            for p in ("host", "snic-cpu")
        }
        user_stack = replace(profile, key="redis:a-userstack", stack="dpdk")
        user = {
            p: measure_operating_point(user_stack, p, RandomStreams(23), 8000)
            for p in ("host", "snic-cpu")
        }
        return {
            "kernel": kernel["snic-cpu"].throughput_rps / kernel["host"].throughput_rps,
            "user": user["snic-cpu"].throughput_rps / user["host"].throughput_rps,
        }

    results = run_once(benchmark, sweep)
    print(f"\nRedis SNIC/host throughput ratio: kernel stack "
          f"{results['kernel']:.2f} vs user-level stack {results['user']:.2f}")
    assert results["user"] > 2.5 * results["kernel"]
