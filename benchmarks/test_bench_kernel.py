"""Performance benchmarks of the simulation substrate itself.

These measure the library's own hot loops (event kernel, Lindley fast
path, DFA scanning, DEFLATE) — regressions here make every experiment
slower.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from conftest import _RECORDS, mean_seconds, record_bench

from repro.core import Resource, Simulator
from repro.core import trace
from repro.core.queueing import simulate_gg1
from repro.functions.compression import deflate
from repro.functions.regex.rulesets import compile_ruleset
from repro.workloads import make_compression_input


def test_event_kernel_throughput(benchmark):
    """Events processed per second by the DES kernel."""

    def run():
        sim = Simulator()
        core = Resource(sim, capacity=2)

        def job():
            yield core.request()
            yield sim.timeout(1e-6)
            core.release()

        for _ in range(2000):
            sim.process(job())
        sim.run()
        return sim._sequence  # events scheduled == events processed

    events = benchmark(run)
    seconds = mean_seconds(benchmark)
    record_bench("kernel", "event_kernel", seconds_mean=seconds,
                 events=int(events),
                 events_per_sec=events / seconds if seconds else None)


def test_lindley_fast_path(benchmark):
    """The G/G/1 fast path that powers every rate probe."""
    rng = np.random.default_rng(0)

    def run():
        return simulate_gg1(
            1e6, lambda r, n: r.exponential(8e-7, size=n), 20_000, rng,
            queue_limit=1e-4,
        )

    benchmark(run)
    record_bench("kernel", "lindley_fast_path",
                 seconds_mean=mean_seconds(benchmark), requests=20_000)


def test_trace_disabled_overhead(benchmark):
    """Flight-recorder overhead contract: tracing off must cost ~nothing.

    Runs the same kernel workload as ``test_event_kernel_throughput``
    with tracing disabled and guards against the untraced kernel number
    recorded earlier in this session (falling back to the machine's last
    ``BENCH_kernel.json``).  The tolerance is deliberately loose (4x) —
    this is a tripwire for accidental hot-path instrumentation (e.g.
    emitting events without the ``trace.TRACING`` guard), not a
    microbenchmark of machine noise.
    """
    trace.disable()

    def run():
        sim = Simulator()
        core = Resource(sim, capacity=2)

        def job():
            yield core.request()
            yield sim.timeout(1e-6)
            core.release()

        for _ in range(2000):
            sim.process(job())
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired > 0
    seconds = mean_seconds(benchmark)
    record_bench("kernel", "trace_disabled_overhead", seconds_mean=seconds,
                 events_fired=int(fired))

    reference = _RECORDS.get("kernel", {}).get("event_kernel",
                                               {}).get("seconds_mean")
    if not reference:
        baseline_path = (Path(__file__).resolve().parent.parent
                         / "BENCH_kernel.json")
        if not baseline_path.exists():
            pytest.skip("no event_kernel baseline recorded on this machine")
        reference = (json.loads(baseline_path.read_text())
                     .get("event_kernel", {}).get("seconds_mean"))
    if not reference:
        pytest.skip("baseline lacks event_kernel seconds_mean")
    assert seconds < 4.0 * reference, (
        f"disabled-trace kernel run took {seconds:.4f}s vs baseline "
        f"{reference:.4f}s — tracing is leaking into the hot path"
    )


def test_trace_enabled_ratio(benchmark):
    """Record (not gate) the enabled-tracing cost of the same workload."""

    def run():
        trace.enable(capacity=1 << 14)
        try:
            sim = Simulator()
            core = Resource(sim, capacity=2)

            def job():
                yield core.request()
                yield sim.timeout(1e-6)
                core.release()

            for _ in range(2000):
                sim.process(job())
            sim.run()
            return sim.events_fired
        finally:
            trace.disable()

    fired = benchmark(run)
    record_bench("kernel", "trace_enabled", seconds_mean=mean_seconds(benchmark),
                 events_fired=int(fired))


def test_dfa_scan_rate(benchmark):
    """Multi-pattern scanning over a 16 KiB payload."""
    matcher = compile_ruleset("file_executable")
    payload = make_compression_input("app", 16 * 1024)

    def run():
        return matcher.scan(payload)

    benchmark(run)


def test_deflate_rate(benchmark):
    """Level-6 DEFLATE over a 4 KiB text chunk."""
    data = make_compression_input("txt", 4096)

    def run():
        return deflate.compress(data, level=6)

    benchmark(run)
