"""Performance benchmarks of the simulation substrate itself.

These measure the library's own hot loops (event kernel, Lindley fast
path, DFA scanning, DEFLATE) — regressions here make every experiment
slower.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from conftest import _RECORDS, mean_seconds, record_bench

from repro.core import Resource, Simulator
from repro.core import instrument, trace
from repro.core.queueing import (
    bounded_waits,
    lindley_waits,
    simulate_batch_server,
    simulate_gg1,
)
from repro.core.rng import RandomStreams
from repro.functions.compression import deflate
from repro.functions.regex.rulesets import compile_ruleset
from repro.workloads import make_compression_input


def test_event_kernel_throughput(benchmark):
    """Events processed per second by the DES kernel."""

    def run():
        sim = Simulator()
        core = Resource(sim, capacity=2)

        def job():
            yield core.request()
            yield sim.timeout(1e-6)
            core.release()

        for _ in range(2000):
            sim.process(job())
        sim.run()
        return sim._sequence  # events scheduled == events processed

    events = benchmark(run)
    seconds = mean_seconds(benchmark)
    stats = benchmark.stats.stats
    record_bench("kernel", "event_kernel", seconds_mean=seconds,
                 seconds_median=float(stats.median),
                 rounds=int(stats.rounds),
                 events=int(events),
                 events_per_sec=events / seconds if seconds else None)


def test_lindley_fast_path(benchmark):
    """The G/G/1 fast path that powers every rate probe."""
    rng = np.random.default_rng(0)

    def run():
        return simulate_gg1(
            1e6, lambda r, n: r.exponential(8e-7, size=n), 20_000, rng,
            queue_limit=1e-4,
        )

    benchmark(run)
    seconds = mean_seconds(benchmark)
    record_bench("kernel", "lindley_fast_path", seconds_mean=seconds,
                 requests=20_000,
                 requests_per_sec=20_000 / seconds if seconds else None)


def test_lindley_vectorized(benchmark):
    """The bare closed-form Lindley kernel (no RNG, no drop logic)."""
    rng = np.random.default_rng(1)
    gaps = rng.exponential(1e-6, size=20_000)
    services = rng.exponential(8e-7, size=20_000)

    def run():
        return lindley_waits(gaps, services)

    benchmark(run)
    seconds = mean_seconds(benchmark)
    record_bench("kernel", "lindley_vectorized", seconds_mean=seconds,
                 requests=20_000,
                 requests_per_sec=20_000 / seconds if seconds else None)


def test_bounded_buffer(benchmark):
    """The bounded-buffer drop kernel under real overload (block fixed
    point with drops in every block)."""
    rng = np.random.default_rng(2)
    arrivals = np.cumsum(rng.exponential(1e-6, size=20_000))
    services = rng.exponential(1.4e-6, size=20_000)  # rho = 1.4: drops

    def run():
        return bounded_waits(arrivals, services, 1e-5)

    kept, _ = benchmark(run)
    assert 0 < kept.sum() < 20_000  # the case actually exercises drops
    seconds = mean_seconds(benchmark)
    record_bench("kernel", "bounded_buffer", seconds_mean=seconds,
                 requests=20_000,
                 requests_per_sec=20_000 / seconds if seconds else None)


def test_batch_server(benchmark):
    """The accelerator batch-server path (searchsorted scheduling)."""
    rng = np.random.default_rng(3)

    def run():
        return simulate_batch_server(
            5e5, 20_000, rng, batch_size=32, batch_timeout=1e-4,
            setup_time=3e-5, per_item_time=1e-6,
        )

    benchmark(run)
    seconds = mean_seconds(benchmark)
    record_bench("kernel", "batch_server", seconds_mean=seconds,
                 requests=20_000,
                 requests_per_sec=20_000 / seconds if seconds else None)


def test_sweep_probe_count(benchmark):
    """Warm-started vs cold sweep: record how many probes the analytic
    estimate saves on a fig4 smoke pair (the benchmark clock times the
    warm search; the interesting numbers are the probe counts)."""
    from repro.experiments.measurement import sweep_operating_rate
    from repro.experiments.profiles import get_profile

    profile = get_profile("udp:64", samples=60)
    instrument.reset()
    warm = benchmark.pedantic(
        sweep_operating_rate, args=(profile, "host", RandomStreams(1)),
        kwargs={"n_requests": 20_000, "warm": True}, rounds=1, iterations=1)
    saved = instrument.value(instrument.PROBES_SAVED)
    cold = sweep_operating_rate(profile, "host", RandomStreams(1),
                                n_requests=20_000, warm=False)
    record_bench("kernel", "sweep_probes",
                 probes_warm=len(warm.probes), probes_cold=len(cold.probes),
                 probes_saved=saved,
                 max_rate_warm=warm.max_rate, max_rate_cold=cold.max_rate)
    assert len(warm.probes) < len(cold.probes)
    assert saved > 0


def test_trace_disabled_overhead(benchmark):
    """Flight-recorder overhead contract: tracing off must cost ~nothing.

    Runs the same kernel workload as ``test_event_kernel_throughput``
    with tracing disabled and guards against the untraced kernel number
    recorded earlier in this session (falling back to the machine's last
    ``BENCH_kernel.json``).  Both sides of the comparison use the
    *median* over the harness's repetitions — a single allocator stall or
    scheduler preemption on a shared CI runner skews a mean for the whole
    session, while the median needs half the rounds to go bad — and the
    repetition counts land in the artifact so a flaky verdict can be
    weighed by how many rounds backed it.  The tolerance is deliberately
    loose (4x): this is a tripwire for accidental hot-path
    instrumentation (e.g. emitting events without the ``trace.TRACING``
    guard), not a microbenchmark of machine noise.
    """
    trace.disable()

    def run():
        sim = Simulator()
        core = Resource(sim, capacity=2)

        def job():
            yield core.request()
            yield sim.timeout(1e-6)
            core.release()

        for _ in range(2000):
            sim.process(job())
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired > 0
    stats = benchmark.stats.stats
    median = float(stats.median)
    record_bench("kernel", "trace_disabled_overhead",
                 seconds_mean=mean_seconds(benchmark),
                 seconds_median=median, rounds=int(stats.rounds),
                 events_fired=int(fired))

    baseline = _RECORDS.get("kernel", {}).get("event_kernel", {})
    if not baseline:
        baseline_path = (Path(__file__).resolve().parent.parent
                         / "BENCH_kernel.json")
        if not baseline_path.exists():
            pytest.skip("no event_kernel baseline recorded on this machine")
        baseline = json.loads(baseline_path.read_text()).get("event_kernel", {})
    reference = baseline.get("seconds_median") or baseline.get("seconds_mean")
    if not reference:
        pytest.skip("baseline lacks event_kernel timings")
    assert median < 4.0 * reference, (
        f"disabled-trace kernel run took {median:.4f}s (median of "
        f"{stats.rounds} rounds) vs baseline {reference:.4f}s — tracing is "
        f"leaking into the hot path"
    )


def test_trace_enabled_ratio(benchmark):
    """Record (not gate) the enabled-tracing cost of the same workload."""

    def run():
        trace.enable(capacity=1 << 14)
        try:
            sim = Simulator()
            core = Resource(sim, capacity=2)

            def job():
                yield core.request()
                yield sim.timeout(1e-6)
                core.release()

            for _ in range(2000):
                sim.process(job())
            sim.run()
            return sim.events_fired
        finally:
            trace.disable()

    fired = benchmark(run)
    record_bench("kernel", "trace_enabled", seconds_mean=mean_seconds(benchmark),
                 events_fired=int(fired))


def test_dfa_scan_rate(benchmark):
    """Multi-pattern scanning over a 16 KiB payload."""
    matcher = compile_ruleset("file_executable")
    payload = make_compression_input("app", 16 * 1024)

    def run():
        return matcher.scan(payload)

    benchmark(run)


def test_deflate_rate(benchmark):
    """Level-6 DEFLATE over a 4 KiB text chunk."""
    data = make_compression_input("txt", 4096)

    def run():
        return deflate.compress(data, level=6)

    benchmark(run)
