"""Benchmark: end-to-end `report` wall-clock per probe engine.

Times the CLI as a cold subprocess — interpreter start, profile
construction, every experiment, rendering — because that is the
wall-clock a user sees.  Two tests:

* ``test_report_smoke_wall`` (the CI gate): `report --smoke` under both
  engines.  Gates are deliberately loose — the committed baseline was
  captured on a 1-CPU container and CI runners are at least as fast, so
  a 3x allowance catches real regressions (a lost fast path is 5-10x)
  without tripping on noisy neighbors.
* ``test_report_full_wall``: default fidelity, recorded so perf bisects
  can track the hybrid speedup against the committed pre-hybrid
  baseline (``main_full_report_seconds``); only the engine-vs-engine
  ordering is asserted, since cross-machine absolute walls at full
  fidelity are too noisy to gate on.

Results land in ``BENCH_report.json`` next to the other artifacts.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

from conftest import record_bench, run_once

from repro.core.executor import usable_cpu_count

BASELINE = json.loads(
    (Path(__file__).parent / "baseline_report.json").read_text()
)


def _wall(*args: str) -> float:
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True,
    )
    seconds = time.perf_counter() - start
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "report produced no output"
    return seconds


def test_report_smoke_wall(benchmark):
    ROUNDS = 2

    def measure():
        sim = min(_wall("--engine", "sim", "report", "--smoke")
                  for _ in range(ROUNDS))
        hybrid = min(_wall("report", "--smoke") for _ in range(ROUNDS))
        return {"sim": sim, "hybrid": hybrid}

    walls = run_once(benchmark, measure)
    sim_seconds, hybrid_seconds = walls["sim"], walls["hybrid"]
    speedup = sim_seconds / hybrid_seconds if hybrid_seconds else 0.0
    record_bench(
        "report", "smoke_wall",
        rounds=ROUNDS, cores=usable_cpu_count(),
        sim_seconds=sim_seconds, hybrid_seconds=hybrid_seconds,
        hybrid_speedup=speedup,
        baseline_hybrid_seconds=BASELINE["smoke"]["hybrid_seconds"],
    )
    # The hybrid engine must never cost wall-clock over pure simulation
    # (absolute slack covers interpreter-start jitter on tiny walls).
    assert hybrid_seconds <= sim_seconds * 1.15 + 0.5, (
        f"hybrid smoke report slower than sim: "
        f"{hybrid_seconds:.2f}s vs {sim_seconds:.2f}s")
    # No regression vs the committed seed baseline.
    floor = 3.0 * BASELINE["smoke"]["hybrid_seconds"]
    assert hybrid_seconds <= floor, (
        f"smoke report regressed: {hybrid_seconds:.2f}s vs committed "
        f"baseline {BASELINE['smoke']['hybrid_seconds']:.2f}s "
        f"(allowance {floor:.2f}s)")


def test_report_full_wall(benchmark):
    def measure():
        sim = _wall("--engine", "sim", "report")
        hybrid = _wall("report")
        return {"sim": sim, "hybrid": hybrid}

    walls = run_once(benchmark, measure)
    sim_seconds, hybrid_seconds = walls["sim"], walls["hybrid"]
    baseline_main = BASELINE["main_full_report_seconds"]
    record_bench(
        "report", "full_wall",
        cores=usable_cpu_count(),
        sim_seconds=sim_seconds, hybrid_seconds=hybrid_seconds,
        hybrid_speedup=(sim_seconds / hybrid_seconds
                        if hybrid_seconds else 0.0),
        baseline_main_seconds=baseline_main,
        speedup_vs_baseline=(baseline_main / hybrid_seconds
                             if hybrid_seconds else 0.0),
    )
    assert hybrid_seconds <= sim_seconds * 1.2, (
        f"hybrid full report slower than sim: "
        f"{hybrid_seconds:.2f}s vs {sim_seconds:.2f}s")
