"""Benchmark: regenerate Figure 6 (power + normalized energy efficiency)."""

from conftest import N_REQUESTS, SAMPLES, run_once

from repro.experiments import format_fig6, run_fig6

PAPER_NOTES = """
paper Fig. 6 anchors:
  idle server / idle SNIC ......... 252 W / 29 W
  max active server / SNIC ........ ~150.6 W / ~5.4 W
  efficiency ratio range .......... 0.2x - 3.8x
  fio ............................. 1.1-1.3x
  REM (file_image only) ........... ~2.5x
  SHA-1 ........................... ~1.9x      (we measure ~2.5x, see EXPERIMENTS.md)
  Compression ..................... 3.4-3.8x
"""


def test_fig6(benchmark, streams):
    rows = run_once(benchmark, run_fig6, samples=SAMPLES,
                    n_requests=N_REQUESTS, streams=streams)
    print()
    print(format_fig6(rows))
    print(PAPER_NOTES)
    ratios = [r.efficiency_ratio for r in rows]
    assert 0.15 <= min(ratios) <= 0.3
    assert 2.8 <= max(ratios) <= 4.2
