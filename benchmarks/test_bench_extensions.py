"""Benchmarks for the extension experiments: Strategy 1 what-ifs and the
inflate offload study."""

from conftest import run_once

from repro.core.rng import RandomStreams
from repro.experiments.measurement import ACCEL_PLATFORM, measure_operating_point
from repro.experiments.profiles import get_profile
from repro.experiments.strategy1 import format_strategy1, run_strategy1


def test_strategy1_stack_offload(benchmark, streams):
    """§5.3 Strategy 1: how much of the TCP/UDP gap does stack offload
    recover?  (paper: proposed, not measured — this is the what-if)"""
    rows = run_once(benchmark, run_strategy1, samples=150, n_requests=8000,
                    streams=streams)
    print()
    print(format_strategy1(rows))
    from repro.experiments.strategy1 import rows_by_scenario

    by_scenario = rows_by_scenario(rows)
    for key, today in by_scenario["today"].items():
        assert by_scenario["datapath-offload"][key] > today


def test_inflate_offload(benchmark, streams):
    """Extension: the compression engine's inflate mode loses to the
    host (Huffman decode is cheap; the engine pays batching overheads).
    Deflate wins, inflate loses — offload asymmetry within one family."""

    def run():
        results = {}
        for key in ("compression:txt", "decompression:txt"):
            profile = get_profile(key, samples=10)
            host = measure_operating_point(profile, "host", streams, 8000)
            accel = measure_operating_point(profile, ACCEL_PLATFORM, streams, 8000)
            results[key] = accel.throughput_rps / host.throughput_rps
        return results

    results = run_once(benchmark, run)
    print(f"\naccel/host throughput: deflate {results['compression:txt']:.2f}x, "
          f"inflate {results['decompression:txt']:.2f}x")
    assert results["compression:txt"] > 1.5
    assert results["decompression:txt"] < 1.0


def test_ipsec_gateway_offload(benchmark, streams):
    """Extension: the strongSwan story quantified — an ESP gateway on the
    host kernel stack vs the SNIC CPU vs DPDK staging + the crypto engine."""

    def run():
        profile = get_profile("ipsec:encap", samples=80)
        return {
            platform: measure_operating_point(profile, platform, streams, 8000)
            for platform in ("host", "snic-cpu", ACCEL_PLATFORM)
        }

    points = run_once(benchmark, run)
    print("\nIPsec ESP encap, 1 KB payloads:")
    for platform, point in points.items():
        print(f"  {platform:<12} {point.goodput_gbps:6.1f} Gb/s  "
              f"p99 {point.p99_latency_s*1e6:7.1f} us  "
              f"{point.server_power_w:6.1f} W")
    assert points[ACCEL_PLATFORM].goodput_gbps > 2 * points["host"].goodput_gbps
