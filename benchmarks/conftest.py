"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints it next to the paper's reported numbers.  Benchmarks run the
experiment exactly once per session (pedantic mode) — the interesting
output is the *experiment result*, not the wall-clock of the harness.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import json
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.core.rng import RandomStreams

# Fidelity shared by every benchmark: full-precision profiles are cached
# across benchmarks inside the library.
SAMPLES = 200
N_REQUESTS = 12_000

# Machine-readable results, grouped per artifact file: each group lands
# in ``BENCH_<group>.json`` at the repo root when the session ends, so CI
# (and perf bisects) can diff runs without scraping terminal tables.
_RECORDS: Dict[str, Dict[str, Dict[str, Any]]] = {}


def record_bench(group: str, name: str, **fields: Any) -> None:
    """Attach one benchmark's numbers to the ``BENCH_<group>.json`` artifact."""
    _RECORDS.setdefault(group, {})[name] = fields


def pytest_sessionfinish(session, exitstatus):
    root = Path(__file__).resolve().parent.parent
    for group, entries in _RECORDS.items():
        path = root / f"BENCH_{group}.json"
        path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def streams():
    return RandomStreams(2023)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def mean_seconds(benchmark) -> float:
    """The mean wall-clock of a finished benchmark, for record_bench."""
    return float(benchmark.stats.stats.mean)
