"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints it next to the paper's reported numbers.  Benchmarks run the
experiment exactly once per session (pedantic mode) — the interesting
output is the *experiment result*, not the wall-clock of the harness.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.core.rng import RandomStreams

# Fidelity shared by every benchmark: full-precision profiles are cached
# across benchmarks inside the library.
SAMPLES = 200
N_REQUESTS = 12_000


@pytest.fixture(scope="session")
def streams():
    return RandomStreams(2023)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
