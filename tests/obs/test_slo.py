"""SLO burn monitor: in/out-of-band evaluation, metric recording,
logging levels, and the non-verdict JSON block."""

from __future__ import annotations

import logging
from types import SimpleNamespace

import pytest

from repro.core import instrument
from repro.obs import metrics, slo


@pytest.fixture(autouse=True)
def _fresh_registry():
    instrument.reset()
    yield
    instrument.reset()


def _fig4_rows(udp64_ratio=0.18, udp64_p99=1.5):
    """Minimal fig4-shaped rows covering two of the registered targets."""
    return [
        SimpleNamespace(key="udp:64", throughput_ratio=udp64_ratio,
                        p99_ratio=udp64_p99),
    ]


class TestTargets:
    def test_every_registered_experiment_has_targets(self):
        assert set(slo.TARGETS) == {"fig4", "fig5", "fig6", "table4",
                                    "table5"}
        for targets in slo.TARGETS.values():
            for target in targets:
                assert target.kind in (slo.ANCHOR, slo.P99_SLO)
                assert target.lo is not None or target.hi is not None

    def test_check_band_edges_inclusive(self):
        target = slo.SloTarget("t", slo.ANCHOR, "", lambda r: None,
                               lo=1.0, hi=2.0)
        assert target.check(1.0) and target.check(2.0)
        assert not target.check(0.999)
        assert not target.check(2.001)


class TestEvaluate:
    def test_in_band_measurements_are_ok(self):
        findings = slo.evaluate("fig4", _fig4_rows())
        by_name = {f.target: f for f in findings}
        assert by_name["udp64_throughput_ratio"].ok
        assert by_name["udp64_p99_ratio"].ok

    def test_out_of_band_measurement_is_breach(self):
        findings = slo.evaluate("fig4", _fig4_rows(udp64_ratio=0.9))
        by_name = {f.target: f for f in findings}
        assert not by_name["udp64_throughput_ratio"].ok
        assert "BREACH" in by_name["udp64_throughput_ratio"].describe()

    def test_missing_keys_skip_targets(self):
        # A smoke subset without the udp:64 row evaluates nothing for it.
        rows = [SimpleNamespace(key="other", throughput_ratio=1.0,
                                p99_ratio=1.0)]
        assert slo.evaluate("fig4", rows) == []

    def test_unknown_experiment_evaluates_nothing(self):
        assert slo.evaluate("fig9", object()) == []

    def test_raising_extractor_is_skipped_not_fatal(self):
        # table4 extractors dereference attributes; a wrong shape raises
        # inside, which evaluate() swallows per target.
        findings = slo.evaluate("table4", object())
        assert findings == []


class TestObserve:
    def test_records_gauges_and_counters(self):
        findings = slo.observe("fig4", _fig4_rows(udp64_ratio=0.9))
        assert len(findings) == 2
        registry = metrics.registry()
        assert registry.counter(slo.EVALUATED).value == 2
        assert registry.counter(slo.BREACHES).value == 1
        gauge = registry.get("slo.fig4.udp64_throughput_ratio")
        assert gauge is not None and gauge.value == pytest.approx(0.9)

    def test_breach_logs_warning_at_default_tier(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.slo"):
            slo.observe("fig4", _fig4_rows(udp64_ratio=0.9), smoke=False)
        records = [r for r in caplog.records if "SLO drift" in r.message]
        assert records and records[0].levelno == logging.WARNING

    def test_breach_logs_info_at_smoke_tier(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.slo"):
            slo.observe("fig4", _fig4_rows(udp64_ratio=0.9), smoke=True)
        records = [r for r in caplog.records if "SLO drift" in r.message]
        assert records and records[0].levelno == logging.INFO

    def test_clean_run_logs_nothing(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.slo"):
            slo.observe("fig4", _fig4_rows())
        assert not [r for r in caplog.records if "SLO drift" in r.message]


class TestBlock:
    def test_shape(self):
        findings = slo.evaluate("fig4", _fig4_rows(udp64_ratio=0.9))
        block = slo.block(findings)
        assert block["evaluated"] == 2
        assert block["breaches"] == 1
        assert {t["name"] for t in block["targets"]} == {
            "udp64_throughput_ratio", "udp64_p99_ratio"}
        breached = [t for t in block["targets"] if not t["ok"]]
        assert breached[0]["measured"] == pytest.approx(0.9)
        assert breached[0]["lo"] == 0.10 and breached[0]["hi"] == 0.30

    def test_empty_findings_yield_none(self):
        assert slo.block([]) is None
