"""Typed metric registry: kinds, buckets, quantiles, and the determinism
contract (worker deltas merged in submission order reproduce the serial
run bit for bit, at any worker completion order and any ``--jobs N``)."""

from __future__ import annotations

import itertools

import pytest

from repro.core import instrument
from repro.core.cache import ResultCache, configure
from repro.core.executor import ParallelExecutor, WorkUnit
from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricRegistry,
    log_buckets,
)
from repro.obs.openmetrics import render


@pytest.fixture(autouse=True)
def _fresh_registry():
    configure(ResultCache())
    instrument.reset()
    yield
    configure(ResultCache())
    instrument.reset()


class TestCounterGauge:
    def test_counter_increments(self):
        reg = MetricRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5
        assert reg.counter_values() == {"c": 5}

    def test_gauge_set_add_and_updates(self):
        reg = MetricRegistry()
        gauge = reg.gauge("g")
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == 2.0
        assert gauge.updates == 2

    def test_kind_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("metric")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            reg.gauge("metric")
        with pytest.raises(ValueError, match="not a histogram"):
            reg.histogram("metric")


class TestLogBuckets:
    def test_deterministic_and_ascending(self):
        bounds = log_buckets(1e-4, 100.0, per_decade=2)
        assert bounds == DEFAULT_SECONDS_BUCKETS
        assert list(bounds) == sorted(set(bounds))
        assert bounds[0] == pytest.approx(1e-4)
        assert bounds[-1] == pytest.approx(100.0)

    def test_per_decade_density(self):
        # Two decades at 4/decade: 9 bounds (both endpoints included).
        assert len(log_buckets(1.0, 100.0, per_decade=4)) == 9

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)


class TestHistogram:
    def test_bucket_counts_le_semantics(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 2.0, 10.0, 11.0):
            hist.observe(value)
        # le=1.0 holds 0.5 and 1.0; le=10.0 holds 2.0 and 10.0; +Inf 11.0.
        assert hist.counts == [2, 2, 1]
        assert hist.cumulative_counts() == [2, 4, 5]
        assert hist.count == 5
        assert hist.sum == pytest.approx(24.5)

    def test_exact_nearest_rank_quantiles(self):
        hist = Histogram("h", buckets=(100.0,))
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.quantile(0.50) == 50.0
        assert hist.quantile(0.99) == 99.0
        assert hist.quantile(1.0) == 100.0
        assert hist.quantile(0.0) == 1.0

    def test_empty_quantile_is_none(self):
        assert Histogram("h", buckets=(1.0,)).quantile(0.99) is None

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestDeltaMergeDeterminism:
    def _serial(self, worker_values):
        reg = MetricRegistry()
        for values in worker_values:
            hist = reg.histogram("wall", buckets=(0.1, 1.0, 10.0))
            for value in values:
                hist.observe(value)
            reg.counter("units").inc()
            reg.gauge("last").set(values[-1])
        return reg

    def _merged(self, worker_values):
        parent = MetricRegistry()
        deltas = []
        for values in worker_values:
            worker = MetricRegistry()  # fresh process image
            before = worker.snapshot()
            hist = worker.histogram("wall", buckets=(0.1, 1.0, 10.0))
            for value in values:
                hist.observe(value)
            worker.counter("units").inc()
            worker.gauge("last").set(values[-1])
            deltas.append(worker.delta_since(before))
        for delta in deltas:  # submission order, regardless of completion
            parent.merge(delta)
        return parent

    def test_merge_reproduces_serial_bit_for_bit(self):
        worker_values = [(0.05, 0.3), (1.7, 0.0001, 2.2), (12.5,)]
        serial = self._serial(worker_values)
        merged = self._merged(worker_values)
        s_hist, m_hist = serial.get("wall"), merged.get("wall")
        assert m_hist.counts == s_hist.counts
        assert m_hist.sum == s_hist.sum  # bitwise: same observation order
        assert m_hist.quantile(0.99) == s_hist.quantile(0.99)
        assert merged.counter("units").value == serial.counter("units").value
        assert merged.gauge("last").value == serial.gauge("last").value
        assert render(merged) == render(serial)

    def test_any_completion_order_same_submission_merge(self):
        # Completion order varies under parallelism; the parent always
        # merges in submission order, so every permutation of *when*
        # deltas arrive yields identical state.
        worker_values = [(0.2,), (3.0, 0.4), (0.009,)]
        reference = render(self._merged(worker_values))
        for permutation in itertools.permutations(range(3)):
            # Simulate out-of-order completion: deltas computed in
            # permutation order but merged in submission order.
            deltas = [None] * 3
            for slot in permutation:
                worker = MetricRegistry()
                before = worker.snapshot()
                hist = worker.histogram("wall", buckets=(0.1, 1.0, 10.0))
                for value in worker_values[slot]:
                    hist.observe(value)
                worker.counter("units").inc()
                worker.gauge("last").set(worker_values[slot][-1])
                deltas[slot] = worker.delta_since(before)
            parent = MetricRegistry()
            for delta in deltas:
                parent.merge(delta)
            assert render(parent) == reference

    def test_gauge_rewrite_to_same_value_still_ships(self):
        worker = MetricRegistry()
        worker.gauge("g").set(1.0)
        before = worker.snapshot()
        worker.gauge("g").set(1.0)  # same value, new write
        delta = worker.delta_since(before)
        assert delta["gauges"] == {"g": 1.0}

    def test_untouched_metrics_ship_nothing(self):
        worker = MetricRegistry()
        worker.counter("c").inc()
        worker.gauge("g").set(2.0)
        worker.histogram("h", buckets=(1.0,)).observe(0.5)
        before = worker.snapshot()
        delta = worker.delta_since(before)
        assert delta == {"counters": {}, "gauges": {}, "hists": {}}


# Module-level so it pickles for the process pool.
def _observing_unit(index):
    hist = metrics.histogram("test.unit_wall", buckets=(0.1, 1.0, 10.0))
    for value in (0.01 * (index + 1), 0.5 + index, 5.0 * index):
        hist.observe(value)
    metrics.counter("test.units").inc()
    metrics.gauge("test.last_index").set(index)
    return index


class TestExecutorIntegration:
    def test_metrics_byte_identical_jobs_1_vs_4(self):
        expositions = []
        for jobs in (1, 4):
            metrics.reset()
            instrument.reset()
            executor = ParallelExecutor(jobs, serial_bypass=False)
            try:
                units = [WorkUnit(name=f"obs:{i}", fn=_observing_unit,
                                  args=(i,)) for i in range(8)]
                results = executor.map(units)
            finally:
                executor.close()
            assert results == list(range(8))
            assert metrics.registry().counter("test.units").value == 8
            expositions.append(render(metrics.registry()))
        assert expositions[0] == expositions[1]

    def test_summary_line_counts_kinds(self):
        metrics.reset()
        metrics.counter("a").inc()
        metrics.gauge("b").set(1)
        metrics.histogram("c", buckets=(1.0,)).observe(0.1)
        assert metrics.summary_line() == (
            "metrics: 1 counters / 1 gauges / 1 histograms")
