"""OpenMetrics exposition: render/parse round trip, strict-parser
rejections, JSONL export, and the localhost /metrics server."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricRegistry
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    MetricsServer,
    export_jsonl,
    metric_name,
    parse_openmetrics,
    render,
    write_metrics_files,
)


def _populated_registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("runfarm.retries", help="requeued unit attempts").inc(3)
    reg.gauge("slo.fig4.udp64_throughput_ratio").set(0.18)
    hist = reg.histogram("unit.wall_seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.7, 2.0, 50.0):
        hist.observe(value)
    return reg


class TestMetricNames:
    def test_dotted_names_sanitize_into_namespace(self):
        assert metric_name("runfarm.timeout") == "repro_runfarm_timeout"
        assert metric_name("a-b c") == "repro_a_b_c"

    def test_already_namespaced_names_pass_through(self):
        assert metric_name("repro_x") == "repro_x"


class TestRenderParseRoundTrip:
    def test_round_trip(self):
        text = render(_populated_registry())
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert set(families) == {
            "repro_runfarm_retries",
            "repro_slo_fig4_udp64_throughput_ratio",
            "repro_unit_wall_seconds",
        }
        counter = families["repro_runfarm_retries"]
        assert counter["type"] == "counter"
        assert counter["samples"][0][2] == 3.0
        hist = families["repro_unit_wall_seconds"]
        buckets = {labels["le"]: value for name, labels, value
                   in hist["samples"] if name.endswith("_bucket")}
        assert buckets == {"0.1": 1.0, "1": 3.0, "10": 4.0, "+Inf": 5.0}

    def test_empty_registry_is_just_eof(self):
        assert render(MetricRegistry()) == "# EOF\n"
        assert parse_openmetrics("# EOF\n") == {}


class TestStrictParser:
    def test_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE repro_x counter\nrepro_x_total 1\n")

    def test_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="no preceding"):
            parse_openmetrics("repro_x_total 1\n# EOF\n")

    def test_rejects_counter_without_total_suffix(self):
        with pytest.raises(ValueError, match="_total"):
            parse_openmetrics("# TYPE repro_x counter\nrepro_x 1\n# EOF\n")

    def test_rejects_gauge_with_suffix(self):
        with pytest.raises(ValueError, match="must not carry"):
            parse_openmetrics("# TYPE repro_x gauge\nrepro_x_total 1\n# EOF\n")

    def test_rejects_non_monotone_bucket_counts(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="monotone"):
            parse_openmetrics(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 2\n'
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_openmetrics(text)

    def test_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 2\n'
            "repro_h_sum 1\n"
            "repro_h_count 2\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_openmetrics(text)


class TestJsonlExport:
    def test_one_line_per_metric_with_quantiles(self):
        stream = io.StringIO()
        count = export_jsonl(stream, _populated_registry())
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().split("\n")]
        assert count == len(lines) == 3
        by_name = {doc["name"]: doc for doc in lines}
        assert by_name["runfarm.retries"]["value"] == 3
        hist = by_name["unit.wall_seconds"]
        assert hist["count"] == 5
        assert hist["p99"] == 50.0
        assert hist["buckets"] == [[0.1, 1], [1.0, 3], [10.0, 4]]

    def test_write_metrics_files(self, tmp_path):
        prom, jsonl, count = write_metrics_files(
            str(tmp_path / "metrics"), _populated_registry())
        assert count == 3
        parse_openmetrics(open(prom).read())  # strict-valid
        assert len(open(jsonl).read().strip().split("\n")) == 3


class TestMetricsServer:
    def test_serves_current_registry_state(self):
        reg = MetricRegistry()
        reg.counter("scrapes.seen").inc()
        server = MetricsServer(port=0, registry=reg).start()
        try:
            assert server.port > 0
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.headers["Content-Type"] == CONTENT_TYPE
                first = response.read().decode("utf-8")
            assert "repro_scrapes_seen_total 1" in first
            reg.counter("scrapes.seen").inc()  # handler renders live
            with urllib.request.urlopen(url, timeout=5) as response:
                second = response.read().decode("utf-8")
            assert "repro_scrapes_seen_total 2" in second
            parse_openmetrics(second)
        finally:
            server.close()

    def test_unknown_path_is_404(self):
        server = MetricsServer(port=0, registry=MetricRegistry()).start()
        try:
            url = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404
        finally:
            server.close()
