"""Tests for the max-sustainable-throughput search."""

import pytest

from repro.core import RunMetrics, find_max_sustainable_rate, rate_response_curve
from repro.core import instrument


def make_system(capacity, base_latency=1e-6):
    """A synthetic M/M/1-flavoured system: sustains rates below capacity,
    p99 grows hyperbolically as the rate approaches capacity."""

    def run_at(rate):
        if rate < capacity:
            completed_rate = rate
            p99 = base_latency / max(1e-9, (1 - rate / capacity))
        else:
            completed_rate = capacity * 0.9  # overload: drops
            p99 = 1.0
        return RunMetrics(
            offered_rate=rate,
            duration=1.0,
            completed=int(completed_rate),
            completed_rate=completed_rate,
            goodput_gbps=completed_rate * 1000 * 8 / 1e9,
            latency_p50=p99 / 2,
            latency_p99=p99,
            latency_mean=p99 / 2,
        )

    return run_at


def test_finds_capacity_knee():
    run_at = make_system(capacity=10_000.0)
    result = find_max_sustainable_rate(run_at, low_rate=100.0, high_rate=100_000.0)
    assert 9_000.0 <= result.max_rate <= 10_000.0


def test_slo_bound_lowers_operating_point():
    run_at = make_system(capacity=10_000.0, base_latency=1e-6)
    # p99 <= 2us happens at rate <= capacity/2
    result = find_max_sustainable_rate(
        run_at, low_rate=100.0, high_rate=100_000.0, slo_p99=2e-6
    )
    assert result.max_rate <= 5_100.0
    assert result.metrics.latency_p99 <= 2e-6


def test_ceiling_respected_when_never_saturating():
    run_at = make_system(capacity=1e12)
    result = find_max_sustainable_rate(run_at, low_rate=10.0, high_rate=500.0)
    assert result.max_rate == 500.0


def test_floor_returned_when_nothing_sustains():
    run_at = make_system(capacity=5.0)
    result = find_max_sustainable_rate(run_at, low_rate=10.0, high_rate=1000.0)
    assert result.max_rate == 10.0
    assert not result.metrics.sustained


def test_invalid_bounds_rejected():
    run_at = make_system(capacity=100.0)
    with pytest.raises(ValueError):
        find_max_sustainable_rate(run_at, low_rate=0.0, high_rate=10.0)
    with pytest.raises(ValueError):
        find_max_sustainable_rate(run_at, low_rate=10.0, high_rate=10.0)


def test_probe_budget_bounds_run_count():
    calls = []
    inner = make_system(capacity=10_000.0)

    def run_at(rate):
        calls.append(rate)
        return inner(rate)

    find_max_sustainable_rate(
        run_at, low_rate=1.0, high_rate=1e9, max_probes=12, tolerance=1e-6
    )
    assert len(calls) <= 12


def test_probes_recorded():
    run_at = make_system(capacity=10_000.0)
    result = find_max_sustainable_rate(run_at, low_rate=100.0, high_rate=100_000.0)
    assert len(result.probes) >= 3
    assert result.goodput_gbps > 0


def test_raising_probe_contained_and_recorded():
    """Hardening: a run_at that blows up at high rates must not abort the
    search — the failed probe is recorded and the knee is still found."""
    inner = make_system(capacity=10_000.0)

    def run_at(rate):
        if rate > 5_000.0:
            raise RuntimeError("model diverged")
        return inner(rate)

    result = find_max_sustainable_rate(run_at, low_rate=100.0, high_rate=1e6)
    assert result.failed_probes >= 1
    assert result.sustainable
    # The raising region acts as the (contained) saturation boundary.
    assert 4_500.0 <= result.max_rate <= 5_000.0
    failed = [m for m in result.probes if m.extra.get("probe_failed")]
    assert failed and all(m.latency_p99 == float("inf") for m in failed)
    assert all(not m.sustained for m in failed)


def test_all_probes_raising_yields_unsustainable_floor():
    def run_at(rate):
        raise RuntimeError("always broken")

    result = find_max_sustainable_rate(run_at, low_rate=10.0, high_rate=1000.0)
    assert result.max_rate == 10.0
    assert not result.sustainable
    assert result.failed_probes == len(result.probes) == 1
    assert result.metrics.extra.get("probe_failed")


def test_sustainable_flag_tracks_probe_outcomes():
    good = find_max_sustainable_rate(
        make_system(capacity=10_000.0), low_rate=100.0, high_rate=100_000.0
    )
    assert good.sustainable
    assert good.failed_probes == 0
    bad = find_max_sustainable_rate(
        make_system(capacity=5.0), low_rate=10.0, high_rate=1000.0
    )
    assert not bad.sustainable


def test_rate_response_curve_keys_match():
    run_at = make_system(capacity=10_000.0)
    rates = [100.0, 1000.0, 5000.0]
    curve = rate_response_curve(run_at, rates)
    assert sorted(curve) == rates
    assert curve[5000.0].latency_p99 > curve[100.0].latency_p99


def test_monotone_latency_in_probe_set():
    run_at = make_system(capacity=10_000.0)
    result = find_max_sustainable_rate(run_at, low_rate=100.0, high_rate=9_999.0)
    sustained = [m for m in result.probes if m.sustained]
    ordered = sorted(sustained, key=lambda m: m.offered_rate)
    latencies = [m.latency_p99 for m in ordered]
    assert latencies == sorted(latencies)


class TestWarmStart:
    """Analytic warm starts: fewer probes, same (probe-verified) answer."""

    CAPACITY = 10_000.0
    LOW, HIGH = 100.0, 100_000.0

    def _search(self, warm_start=None, capacity=CAPACITY, **kwargs):
        calls = []
        inner = make_system(capacity=capacity)

        def run_at(rate):
            calls.append(rate)
            return inner(rate)

        result = find_max_sustainable_rate(
            run_at, low_rate=self.LOW, high_rate=self.HIGH,
            warm_start=warm_start, **kwargs)
        return result, calls

    def test_good_estimate_saves_probes_same_answer(self):
        cold, cold_calls = self._search()
        warm, warm_calls = self._search(warm_start=self.CAPACITY)
        assert len(warm_calls) < len(cold_calls)
        assert warm.max_rate == pytest.approx(cold.max_rate, rel=0.02)

    def test_probe_saved_counter_increments(self):
        before = instrument.value(instrument.PROBES_SAVED)
        self._search(warm_start=self.CAPACITY)
        assert instrument.value(instrument.PROBES_SAVED) > before

    def test_cold_search_never_touches_counter(self):
        before = instrument.value(instrument.PROBES_SAVED)
        self._search()
        assert instrument.value(instrument.PROBES_SAVED) == before

    def test_high_estimate_degrades_to_floor_bisection(self):
        # Estimate 5x over capacity: both bracket probes fail, the
        # search verifies the floor and bisects below the failed probe.
        warm, _ = self._search(warm_start=5 * self.CAPACITY)
        assert warm.sustainable
        assert warm.max_rate == pytest.approx(self.CAPACITY, rel=0.1)

    def test_low_estimate_resumes_geometric_ramp(self):
        warm, _ = self._search(warm_start=self.CAPACITY / 20.0)
        assert warm.sustainable
        assert warm.max_rate == pytest.approx(self.CAPACITY, rel=0.05)

    def test_estimate_above_ceiling_clamped(self):
        # Capacity beyond the search ceiling: the warm search verifies
        # the ceiling itself and stops there, like the cold one.
        warm, _ = self._search(warm_start=1e9, capacity=1e9)
        assert warm.max_rate == self.HIGH

    def test_nothing_sustains_reports_floor(self):
        warm, _ = self._search(warm_start=self.CAPACITY, capacity=1.0)
        assert not warm.sustainable
        assert warm.max_rate == self.LOW

    def test_answer_always_probe_verified(self):
        # The returned metrics must come from an actual probe at (or
        # bracketing) max_rate, never from the analytic estimate.
        warm, calls = self._search(warm_start=self.CAPACITY)
        assert warm.metrics.offered_rate in calls
