"""Content-addressed result cache: keys, layers, and the report contract.

The acceptance criterion from the issue lives here: running Fig. 4 twice
at the same fidelity and seed must simulate each (function, platform)
pair exactly once — the second run is all cache hits and zero probes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import instrument
from repro.core.cache import (
    CODE_VERSION,
    ResultCache,
    cache_key,
    configure,
    get_cache,
)
from repro.core.rng import RandomStreams
from repro.experiments.fig4 import run_fig4

CHEAP_KEYS = ("udp:64", "dpdk:64")
SAMPLES = 20
N_REQUESTS = 600
SEED = 7


@pytest.fixture(autouse=True)
def _fresh_cache():
    configure(ResultCache())
    instrument.reset()
    yield
    configure(ResultCache())
    instrument.reset()


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key("a", 1, 2.5) == cache_key("a", 1, 2.5)

    def test_differs_by_any_part(self):
        base = cache_key("op", "udp:64", "host", 7)
        assert cache_key("op", "udp:64", "host", 8) != base
        assert cache_key("op", "udp:64", "snic", 7) != base
        assert cache_key("op", "udp:65", "host", 7) != base

    def test_salted_with_code_version(self):
        # The version participates in the digest: the key of the version
        # string itself must differ from any key that omitted it.
        assert CODE_VERSION  # non-empty
        assert cache_key() != cache_key(CODE_VERSION)

    def test_canonicalizes_containers(self):
        assert cache_key([1, 2]) == cache_key((1, 2))
        assert cache_key({"b": 2, "a": 1}) == cache_key({"a": 1, "b": 2})
        assert cache_key({3, 1, 2}) == cache_key({2, 3, 1})

    def test_type_distinction(self):
        assert cache_key(1) != cache_key("1")
        assert cache_key(1) != cache_key(1.0)

    def test_rejects_unhashable_objects(self):
        with pytest.raises(TypeError):
            cache_key(object())


class TestMemoryLayer:
    def test_miss_then_hit(self):
        store = ResultCache()
        key = cache_key("k")
        found, _ = store.get(key)
        assert not found
        store.put(key, {"x": 1})
        found, value = store.get(key)
        assert found and value == {"x": 1}
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_get_or_compute_computes_once(self):
        store = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        key = cache_key("goc")
        assert store.get_or_compute(key, compute) == 42
        assert store.get_or_compute(key, compute) == 42
        assert len(calls) == 1

    def test_clear_and_len(self):
        store = ResultCache()
        store.put(cache_key("a"), 1)
        store.put(cache_key("b"), 2)
        assert len(store) == 2
        store.clear()
        assert len(store) == 0

    def test_instrument_counters_track_lookups(self):
        store = ResultCache()
        key = cache_key("counted")
        store.get(key)
        store.put(key, 1)
        store.get(key)
        assert instrument.value(instrument.CACHE_MISSES) == 1
        assert instrument.value(instrument.CACHE_HITS) == 1


class TestDiskLayer:
    def test_round_trip_across_instances(self, tmp_path):
        first = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("disk", 1)
        first.put(key, [1.0, 2.0, 3.0])
        # A fresh instance (fresh process, conceptually) sees the entry.
        second = ResultCache(cache_dir=str(tmp_path))
        found, value = second.get(key)
        assert found and value == [1.0, 2.0, 3.0]
        assert second.stats.disk_hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("corrupt")
        store.put(key, "payload")
        # Truncate the pickle on disk, then look it up from a cold cache.
        files = list(tmp_path.rglob("*"))
        payloads = [f for f in files if f.is_file()]
        assert payloads
        payloads[0].write_bytes(b"\x80not a pickle")
        cold = ResultCache(cache_dir=str(tmp_path))
        found, _ = cold.get(key)
        assert not found

    def test_no_partial_files_left_behind(self, tmp_path):
        store = ResultCache(cache_dir=str(tmp_path))
        store.put(cache_key("atomic"), list(range(100)))
        leftovers = [f for f in tmp_path.rglob("*")
                     if f.is_file() and f.suffix == ".tmp"]
        assert leftovers == []

    def test_unpicklable_value_stays_in_memory(self, tmp_path):
        store = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("nopickle")
        value = lambda: None  # noqa: E731 — lambdas don't pickle
        with pytest.raises((pickle.PicklingError, AttributeError,
                            TypeError)):
            pickle.dumps(value)
        store.put(key, value)
        found, got = store.get(key)
        assert found and got is value


class TestReportContract:
    def test_second_fig4_run_is_all_hits(self):
        """Acceptance criterion: each (function, platform) pair at most once."""
        streams = RandomStreams(SEED)
        first = run_fig4(keys=CHEAP_KEYS, samples=SAMPLES,
                         n_requests=N_REQUESTS, streams=streams)
        probes_after_first = instrument.value(instrument.PROBES)
        misses_after_first = instrument.value(instrument.CACHE_MISSES)
        assert probes_after_first > 0
        assert misses_after_first == 2 * len(CHEAP_KEYS)

        second = run_fig4(keys=CHEAP_KEYS, samples=SAMPLES,
                          n_requests=N_REQUESTS, streams=RandomStreams(SEED))
        # No new probes ran: every operating point came from the cache.
        assert instrument.value(instrument.PROBES) == probes_after_first
        assert instrument.value(instrument.CACHE_MISSES) == misses_after_first
        assert instrument.value(instrument.CACHE_HITS) == 2 * len(CHEAP_KEYS)
        # And the cached objects are the same objects, not recomputations.
        for a, b in zip(first, second):
            assert a.host is b.host
            assert a.snic is b.snic

    def test_configure_swaps_the_global_cache(self):
        replacement = ResultCache()
        configure(replacement)
        assert get_cache() is replacement


class TestCorruptQuarantine:
    def test_corrupt_entry_renamed_not_deleted(self, tmp_path):
        """A torn pickle is quarantined to *.corrupt for post-mortem."""
        store = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("quarantine")
        store.put(key, {"payload": 1})
        payload = next(f for f in tmp_path.rglob("*.pkl"))
        payload.write_bytes(b"\x80torn mid-write")
        cold = ResultCache(cache_dir=str(tmp_path))
        found, _ = cold.get(key)
        assert not found
        assert not payload.exists()
        corpses = list(tmp_path.rglob("*.corrupt"))
        assert len(corpses) == 1
        assert corpses[0].name == payload.name + ".corrupt"

    def test_corrupt_counter_and_stats(self, tmp_path):
        store = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("quarantine-counted")
        store.put(key, [1, 2, 3])
        payload = next(f for f in tmp_path.rglob("*.pkl"))
        payload.write_bytes(b"garbage")
        cold = ResultCache(cache_dir=str(tmp_path))
        cold.get(key)
        assert cold.stats.corrupt == 1
        assert instrument.value(instrument.CACHE_CORRUPT) == 1

    def test_quarantined_key_is_writable_again(self, tmp_path):
        store = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("quarantine-rewrite")
        store.put(key, "original")
        payload = next(f for f in tmp_path.rglob("*.pkl"))
        payload.write_bytes(b"garbage")
        cold = ResultCache(cache_dir=str(tmp_path))
        found, _ = cold.get(key)
        assert not found
        cold.put(key, "recomputed")
        fresh = ResultCache(cache_dir=str(tmp_path))
        found, value = fresh.get(key)
        assert found and value == "recomputed"


class TestArtifactDigests:
    def test_put_returns_sha256_of_pickle_bytes(self, tmp_path):
        import hashlib

        store = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("digest")
        digest = store.put(key, [1.0, 2.0])
        expected = hashlib.sha256(
            pickle.dumps([1.0, 2.0], protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
        assert digest == expected
        assert store.digest(key) == expected

    def test_disk_hit_records_digest(self, tmp_path):
        store = ResultCache(cache_dir=str(tmp_path))
        key = cache_key("digest-hit")
        written = store.put(key, {"a": 1})
        cold = ResultCache(cache_dir=str(tmp_path))
        found, _ = cold.get(key)
        assert found
        assert cold.digest(key) == written

    def test_unpicklable_put_returns_none(self):
        store = ResultCache()
        key = cache_key("digest-nopickle")
        assert store.put(key, lambda: None) is None
        assert store.digest(key) is None
