"""Tests for the fast-path queueing simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queueing import (
    QueueOutcome,
    lindley_waits,
    outcome_to_metrics,
    simulate_batch_server,
    simulate_gg1,
    simulate_sharded,
)


def constant_service(value):
    def sampler(rng, n):
        return np.full(n, value)

    return sampler


def exponential_service(mean):
    def sampler(rng, n):
        return rng.exponential(mean, size=n)

    return sampler


class TestLindley:
    def test_no_queueing_when_gaps_exceed_service(self):
        gaps = np.array([1.0, 1.0, 1.0])
        services = np.array([0.5, 0.5, 0.5])
        assert (lindley_waits(gaps, services) == 0).all()

    def test_back_to_back_arrivals_queue(self):
        gaps = np.array([1.0, 0.0, 0.0])
        services = np.array([1.0, 1.0, 1.0])
        waits = lindley_waits(gaps, services)
        assert waits.tolist() == [0.0, 1.0, 2.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            lindley_waits(np.array([1.0]), np.array([1.0, 2.0]))

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_waits_nonnegative(self, n):
        rng = np.random.default_rng(n)
        gaps = rng.exponential(1.0, size=n)
        services = rng.exponential(0.7, size=n)
        assert (lindley_waits(gaps, services) >= 0).all()


class TestGG1:
    def test_rejects_nonpositive_rate(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_gg1(0.0, constant_service(1.0), 10, rng)

    def test_deterministic_underload_has_zero_wait(self):
        rng = np.random.default_rng(0)
        outcome = simulate_gg1(
            10.0, constant_service(0.05), 1000, rng, arrival_cv=0.0
        )
        assert outcome.sojourns == pytest.approx(np.full(1000, 0.05))

    def test_mm1_mean_sojourn_matches_theory(self):
        """M/M/1 at rho=0.5: E[T] = 1/(mu - lambda)."""
        rng = np.random.default_rng(42)
        mu, lam = 10.0, 5.0
        outcome = simulate_gg1(lam, exponential_service(1 / mu), 200_000, rng)
        theory = 1.0 / (mu - lam)
        assert float(np.mean(outcome.sojourns)) == pytest.approx(theory, rel=0.05)

    def test_latency_grows_with_load(self):
        rng = np.random.default_rng(1)
        light = simulate_gg1(1.0, exponential_service(0.1), 20_000, rng)
        heavy = simulate_gg1(9.0, exponential_service(0.1), 20_000, rng)
        assert np.percentile(heavy.sojourns, 99) > np.percentile(light.sojourns, 99)

    def test_queue_limit_drops_under_overload(self):
        rng = np.random.default_rng(2)
        outcome = simulate_gg1(
            100.0, constant_service(0.1), 5000, rng, queue_limit=0.5
        )
        assert outcome.dropped > 0
        # Kept sojourns are bounded by limit + service
        assert outcome.sojourns.max() <= 0.5 + 0.1 + 1e-9

    def test_no_drops_under_light_load_with_limit(self):
        rng = np.random.default_rng(3)
        outcome = simulate_gg1(
            1.0, constant_service(0.01), 2000, rng, queue_limit=0.5
        )
        assert outcome.dropped == 0


class TestSharded:
    def test_shard_count_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_sharded(10.0, 0, constant_service(0.1), 10, rng)

    def test_sharding_divides_rate(self):
        """8 cores at rate R behave like one core at R/8."""
        service = constant_service(0.01)
        a = simulate_sharded(
            800.0, 8, service, 5000, np.random.default_rng(7), arrival_cv=0.0
        )
        b = simulate_gg1(
            100.0, service, 5000, np.random.default_rng(7), arrival_cv=0.0
        )
        assert a.sojourns == pytest.approx(b.sojourns)


class TestBatchServer:
    def test_batch_size_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_batch_server(10.0, 10, rng, 0, 1e-3, 1e-4, 1e-5)

    def test_single_item_batches_when_sparse(self):
        """With huge gaps each item is its own (timeout-expired) batch."""
        rng = np.random.default_rng(0)
        outcome = simulate_batch_server(
            rate=1.0,
            n_requests=100,
            rng=rng,
            batch_size=32,
            batch_timeout=1e-3,
            setup_time=10e-6,
            per_item_time=1e-6,
            arrival_cv=0.0,
        )
        # Every request waits the full batch timeout plus setup + 1 item.
        expected = 1e-3 + 10e-6 + 1e-6
        assert outcome.sojourns == pytest.approx(np.full(100, expected))

    def test_full_batches_when_dense(self):
        """At high rate, batches fill and amortize setup."""
        rng = np.random.default_rng(0)
        outcome = simulate_batch_server(
            rate=1e6,
            n_requests=3200,
            rng=rng,
            batch_size=32,
            batch_timeout=1e-3,
            setup_time=10e-6,
            per_item_time=1e-7,
            arrival_cv=0.0,
        )
        # Mean effective service per item is ~ setup/32 + per_item
        assert float(np.mean(outcome.services)) == pytest.approx(
            10e-6 / 32 + 1e-7, rel=0.05
        )

    def test_batching_amortization_raises_capacity(self):
        """Throughput ceiling with batching exceeds the unbatched one."""
        unbatched_capacity = 1.0 / (10e-6 + 1e-7)
        batched_capacity = 1.0 / (10e-6 / 32 + 1e-7)
        assert batched_capacity > 10 * unbatched_capacity

    def test_sojourns_exceed_setup(self):
        rng = np.random.default_rng(5)
        outcome = simulate_batch_server(
            rate=1e5, n_requests=1000, rng=rng, batch_size=8,
            batch_timeout=50e-6, setup_time=20e-6, per_item_time=1e-6,
        )
        assert (outcome.sojourns >= 20e-6).all()


class TestOutcomeToMetrics:
    def test_empty_outcome(self):
        outcome = QueueOutcome(
            sojourns=np.array([]), services=np.array([]), arrivals=np.array([]),
            dropped=5,
        )
        metrics = outcome_to_metrics(outcome, offered_rate=10.0, bytes_per_request=100)
        assert metrics.completed == 0
        assert metrics.dropped == 5
        assert metrics.latency_p99 == float("inf")

    def test_underload_reports_offered_rate(self):
        rng = np.random.default_rng(0)
        outcome = simulate_gg1(100.0, constant_service(1e-3), 20_000, rng)
        metrics = outcome_to_metrics(outcome, 100.0, bytes_per_request=1000)
        assert metrics.completed_rate == pytest.approx(100.0, rel=0.05)
        assert metrics.sustained

    def test_sharded_scaleup(self):
        rng = np.random.default_rng(0)
        outcome = simulate_sharded(800.0, 8, constant_service(1e-3), 20_000, rng)
        metrics = outcome_to_metrics(outcome, 800.0, bytes_per_request=1000, cores=8)
        assert metrics.completed_rate == pytest.approx(800.0, rel=0.05)

    def test_overload_not_sustained(self):
        rng = np.random.default_rng(0)
        # capacity 1000/s, offered 2000/s
        outcome = simulate_gg1(2000.0, constant_service(1e-3), 20_000, rng)
        metrics = outcome_to_metrics(outcome, 2000.0, bytes_per_request=1000)
        assert not metrics.sustained
        assert metrics.completed_rate == pytest.approx(1000.0, rel=0.1)

    def test_goodput_accounts_bytes(self):
        rng = np.random.default_rng(0)
        outcome = simulate_gg1(1000.0, constant_service(1e-5), 20_000, rng)
        metrics = outcome_to_metrics(outcome, 1000.0, bytes_per_request=1250)
        # 1000 req/s * 1250 B * 8 = 10 Mbit/s
        assert metrics.goodput_gbps == pytest.approx(0.01, rel=0.05)
