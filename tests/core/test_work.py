"""Tests for WorkUnits accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.work import WorkUnits


def test_empty_total():
    assert WorkUnits().total() == 0.0


def test_add_accumulates():
    units = WorkUnits()
    units.add("instr", 10).add("instr", 5).add("hash_probe")
    assert units.get("instr") == 15.0
    assert units.get("hash_probe") == 1.0


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        WorkUnits({"instr": -1})
    with pytest.raises(ValueError):
        WorkUnits().add("instr", -2)


def test_merge():
    a = WorkUnits({"instr": 1, "dfa_byte": 2})
    b = WorkUnits({"dfa_byte": 3, "aes_block": 4})
    a.merge(b)
    assert a.get("dfa_byte") == 5.0
    assert a.get("aes_block") == 4.0


def test_scaled_returns_new_object():
    a = WorkUnits({"instr": 10})
    b = a.scaled(0.5)
    assert b.get("instr") == 5.0
    assert a.get("instr") == 10.0


def test_scaled_rejects_negative():
    with pytest.raises(ValueError):
        WorkUnits({"instr": 1}).scaled(-1)


def test_equality():
    assert WorkUnits({"a": 1}) == WorkUnits({"a": 1})
    assert WorkUnits({"a": 1}) != WorkUnits({"a": 2})


def test_get_missing_kind_is_zero():
    assert WorkUnits().get("nothing") == 0.0


def test_repr_sorted():
    text = repr(WorkUnits({"b": 2, "a": 1}))
    assert text.index("a=1") < text.index("b=2")


@given(st.dictionaries(st.sampled_from("abcde"), st.floats(0, 1e6), max_size=5),
       st.floats(0, 10))
@settings(max_examples=50, deadline=None)
def test_scaling_scales_total(counts, factor):
    units = WorkUnits(counts)
    assert units.scaled(factor).total() == pytest.approx(units.total() * factor)
