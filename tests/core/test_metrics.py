"""Unit and property tests for the measurement instruments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LatencyRecorder, P2Quantile, RunMetrics, ThroughputMeter


class TestLatencyRecorder:
    def test_empty_percentile_is_inf(self):
        recorder = LatencyRecorder()
        assert recorder.p99() == float("inf")

    def test_warmup_samples_dropped(self):
        recorder = LatencyRecorder(warmup_until=1.0)
        recorder.record(0.5, 100.0)  # warmup
        recorder.record(1.5, 1.0)
        assert recorder.count == 1
        assert recorder.warmup_count == 1
        assert recorder.p99() == pytest.approx(1.0)

    def test_negative_latency_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(1.0, -0.1)

    def test_percentiles_match_numpy(self):
        recorder = LatencyRecorder()
        values = np.linspace(1.0, 100.0, 100)
        for v in values:
            recorder.record(10.0, float(v))
        assert recorder.p50() == pytest.approx(np.percentile(values, 50))
        assert recorder.p99() == pytest.approx(np.percentile(values, 99))
        assert recorder.mean() == pytest.approx(values.mean())
        assert recorder.max() == pytest.approx(100.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_p99_bounded_by_min_max(self, samples):
        recorder = LatencyRecorder()
        for s in samples:
            recorder.record(1.0, s)
        assert min(samples) <= recorder.p99() <= max(samples)


class TestThroughputMeter:
    def test_counts_and_rates(self):
        meter = ThroughputMeter()
        for t in range(1, 11):
            meter.record(float(t), nbytes=1000)
        assert meter.requests == 10
        assert meter.request_rate(window=10.0) == pytest.approx(1.0)
        assert meter.byte_rate(window=10.0) == pytest.approx(1000.0)
        assert meter.gbps(window=10.0) == pytest.approx(8e3 / 1e9)

    def test_warmup_excluded(self):
        meter = ThroughputMeter(warmup_until=5.0)
        meter.record(1.0, nbytes=100)
        meter.record(6.0, nbytes=100)
        assert meter.requests == 1
        assert meter.bytes == 100
        assert meter.first_completion == 6.0

    def test_zero_window(self):
        meter = ThroughputMeter()
        assert meter.request_rate(0.0) == 0.0
        assert meter.gbps(0.0) == 0.0


class TestP2Quantile:
    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_small_sample_exact(self):
        estimator = P2Quantile(0.5)
        for v in [3.0, 1.0, 2.0]:
            estimator.add(v)
        assert estimator.value() == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.5).value())

    def test_median_of_uniform_stream(self):
        rng = np.random.default_rng(7)
        estimator = P2Quantile(0.5)
        data = rng.uniform(0.0, 10.0, size=5000)
        for v in data:
            estimator.add(float(v))
        assert estimator.value() == pytest.approx(np.percentile(data, 50), rel=0.1)

    def test_p99_of_exponential_stream(self):
        rng = np.random.default_rng(11)
        estimator = P2Quantile(0.99)
        data = rng.exponential(1.0, size=20000)
        for v in data:
            estimator.add(float(v))
        assert estimator.value() == pytest.approx(np.percentile(data, 99), rel=0.15)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=6, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_estimate_within_data_range(self, samples):
        estimator = P2Quantile(0.9)
        for s in samples:
            estimator.add(s)
        assert min(samples) <= estimator.value() <= max(samples)


class TestRunMetrics:
    def _metrics(self, offered, completed_rate):
        return RunMetrics(
            offered_rate=offered,
            duration=1.0,
            completed=int(completed_rate),
            completed_rate=completed_rate,
            goodput_gbps=1.0,
            latency_p50=1e-6,
            latency_p99=5e-6,
            latency_mean=2e-6,
        )

    def test_sustained_when_keeping_up(self):
        assert self._metrics(1000.0, 995.0).sustained

    def test_not_sustained_when_falling_behind(self):
        assert not self._metrics(1000.0, 900.0).sustained

    def test_zero_offered_rate_is_sustained(self):
        assert self._metrics(0.0, 0.0).sustained

    def test_p99_in_microseconds(self):
        assert self._metrics(1.0, 1.0).latency_p99_us() == pytest.approx(5.0)
