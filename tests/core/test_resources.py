"""Unit tests for Resource and Store queueing primitives."""

import pytest

from repro.core import Resource, SimulationError, Simulator, Store


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_single_server_serializes_work():
    sim = Simulator()
    core = Resource(sim, capacity=1)
    completions = []

    def job(name, service):
        request = core.request()
        yield request
        yield sim.timeout(service)
        core.release()
        completions.append((name, sim.now))

    sim.process(job("a", 1.0))
    sim.process(job("b", 1.0))
    sim.process(job("c", 1.0))
    sim.run()
    assert completions == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_multi_server_runs_in_parallel():
    sim = Simulator()
    cores = Resource(sim, capacity=2)
    completions = []

    def job(name):
        yield cores.request()
        yield sim.timeout(1.0)
        cores.release()
        completions.append((name, sim.now))

    for name in "abcd":
        sim.process(job(name))
    sim.run()
    assert completions == [("a", 1.0), ("b", 1.0), ("c", 2.0), ("d", 2.0)]


def test_fifo_grant_order():
    sim = Simulator()
    core = Resource(sim, capacity=1)
    grants = []

    def job(name, arrival):
        yield sim.timeout(arrival)
        yield core.request()
        grants.append(name)
        yield sim.timeout(5.0)
        core.release()

    sim.process(job("first", 0.0))
    sim.process(job("second", 1.0))
    sim.process(job("third", 2.0))
    sim.run()
    assert grants == ["first", "second", "third"]


def test_release_idle_resource_raises():
    sim = Simulator()
    core = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        core.release()


def test_queue_length_tracks_waiters():
    sim = Simulator()
    core = Resource(sim, capacity=1)

    def hold():
        yield core.request()
        yield sim.timeout(10.0)
        core.release()

    def wait():
        yield core.request()
        core.release()

    sim.process(hold())
    sim.process(wait())
    sim.process(wait())
    sim.run(until=1.0)
    assert core.in_use == 1
    assert core.queue_length == 2


def test_utilization_single_busy_server():
    sim = Simulator()
    core = Resource(sim, capacity=1)

    def job():
        yield core.request()
        yield sim.timeout(4.0)
        core.release()

    sim.process(job())
    sim.run(until=8.0)
    assert core.utilization() == pytest.approx(0.5)


def test_utilization_reset():
    sim = Simulator()
    core = Resource(sim, capacity=1)

    def job():
        yield core.request()
        yield sim.timeout(4.0)
        core.release()

    sim.process(job())
    sim.run(until=4.0)
    core.reset_utilization()
    sim.run(until=8.0)
    assert core.utilization(elapsed=4.0) == pytest.approx(0.0)


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in [1, 2, 3]:
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(3.0)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 3.0)]


def test_bounded_store_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        item = yield store.get()
        events.append(("got-" + item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 5.0) in events  # unblocked only after the get
    assert len(store) == 1  # "b" still buffered


def test_bounded_store_preserves_order_through_blocking():
    sim = Simulator()
    store = Store(sim, capacity=2)
    got = []

    def producer():
        for item in "abcd":
            yield store.put(item)

    def consumer():
        for _ in range(4):
            item = yield store.get()
            got.append(item)
            yield sim.timeout(1.0)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list("abcd")


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)
