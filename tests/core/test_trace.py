"""Flight-recorder trace facility: ring buffer, clocks, exporters.

The overhead contract (disabled tracing is a no-op) is covered here
functionally and in ``benchmarks/test_bench_kernel.py`` quantitatively.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core import instrument, trace


@pytest.fixture(autouse=True)
def _clean():
    trace.disable()
    instrument.reset()
    yield
    trace.disable()
    instrument.reset()


class TestRecorder:
    def test_enable_installs_recorder_and_flag(self):
        assert not trace.enabled()
        rec = trace.enable()
        assert trace.enabled() and trace.TRACING
        assert trace.recorder() is rec
        trace.disable()
        assert not trace.enabled() and trace.recorder() is None

    def test_capacity_bound_evicts_oldest_and_counts_drops(self):
        rec = trace.enable(capacity=4)
        for i in range(7):
            trace.instant(f"e{i}", trace.SIM)
        assert len(rec) == 4
        assert rec.appended == 7
        assert rec.dropped == 3
        assert [e.name for e in rec.events()] == ["e3", "e4", "e5", "e6"]
        assert instrument.value(instrument.TRACE_DROPPED) == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            trace.TraceRecorder(capacity=0)
        with pytest.raises(ValueError):
            trace.TraceRecorder(metrics_interval_s=0.0)

    def test_logical_clock_is_per_track(self):
        rec = trace.enable()
        trace.instant("a", trace.PROBE)                # main tick 0
        trace.instant("b", trace.PROBE, track="other")  # other tick 0
        trace.instant("c", trace.PROBE)                # main tick 1
        ts = [(e.track, e.ts_us) for e in rec.events()]
        assert ts == [("main", 0.0), ("other", 0.0), ("main", 1.0)]

    def test_track_context_scopes_and_restores(self):
        rec = trace.enable()
        assert trace.current_track() == "main"
        with trace.track("unit-x"):
            assert trace.current_track() == "unit-x"
            assert trace.subtrack("queue") == "unit-x/queue"
            trace.instant("inside", trace.PROBE)
        assert trace.current_track() == "main"
        assert rec.events()[0].track == "unit-x"

    def test_simulated_time_converted_to_microseconds(self):
        rec = trace.enable()
        trace.instant("i", trace.SIM, ts=0.5)
        trace.complete("x", trace.ACCEL_BATCH, ts=1.0, dur=2e-6)
        events = rec.events()
        assert events[0].ts_us == 0.5e6
        assert events[1].ts_us == 1e6 and events[1].dur_us == pytest.approx(2.0)

    def test_category_counts(self):
        rec = trace.enable()
        trace.instant("a", trace.SIM)
        trace.instant("b", trace.QUEUE)
        trace.instant("c", trace.QUEUE)
        assert rec.category_counts() == {trace.SIM: 1, trace.QUEUE: 2}


class TestDisabledNoOp:
    def test_emit_helpers_are_noops_when_disabled(self):
        trace.instant("a", trace.SIM)
        trace.complete("b", trace.SIM, ts=0.0, dur=1.0)
        trace.counter("c", trace.QUEUE, depth=1)
        assert trace.recorder() is None
        assert instrument.value(instrument.TRACE_DROPPED) == 0

    def test_export_without_recorder_is_empty(self):
        buffer = io.StringIO()
        assert trace.export_jsonl(buffer) == 0
        assert buffer.getvalue() == ""
        buffer = io.StringIO()
        assert trace.export_chrome(buffer) == 0
        assert json.loads(buffer.getvalue()) == {"traceEvents": []}


class TestExporters:
    def _populate(self):
        rec = trace.enable()
        trace.instant("probe", trace.PROBE, rate=100.0)
        trace.complete("batch", trace.ACCEL_BATCH, ts=1e-3, dur=5e-6,
                       track="accel", size=32)
        trace.counter("queue", trace.QUEUE, ts=2e-3, track="q",
                      depth=3, util=0.5)
        return rec

    def test_jsonl_one_stable_line_per_event(self):
        rec = self._populate()
        buffer = io.StringIO()
        assert trace.export_jsonl(buffer, rec) == 3
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first == {"name": "probe", "cat": trace.PROBE, "ph": "i",
                         "track": "main", "ts": 0.0,
                         "args": {"rate": 100.0}}
        # Stable serialization: same recorder -> same bytes.
        again = io.StringIO()
        trace.export_jsonl(again, rec)
        assert again.getvalue() == buffer.getvalue()

    def test_chrome_export_is_perfetto_shaped(self):
        rec = self._populate()
        buffer = io.StringIO()
        assert trace.export_chrome(buffer, rec) == 3
        doc = json.loads(buffer.getvalue())
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metadata} == {"main", "accel", "q"}
        payload = [e for e in events if e["ph"] != "M"]
        for event in payload:
            assert event["pid"] == 1 and event["tid"] >= 1
        span = next(e for e in payload if e["ph"] == "X")
        assert span["dur"] == pytest.approx(5.0)
        instant = next(e for e in payload if e["ph"] == "i")
        assert instant["s"] == "t"
        assert doc["otherData"]["dropped_events"] == 0

    def test_summary_line(self):
        assert trace.summary_line() == "trace off"
        rec = self._populate()
        assert trace.summary_line(rec) == "trace 3 ev (0 dropped)"
