"""Parallel executor: serial/parallel equivalence and counter merging.

The contract under test is the one DESIGN.md promises: ``--jobs N`` is a
wall-clock knob, never a results knob.  Every work unit re-derives its
RNG substreams from ``(seed, name)``, so the same units produce the same
bytes whether they run in-process or in a worker pool.
"""

from __future__ import annotations

import io

import pytest

from repro.core import instrument, trace
from repro.core.cache import ResultCache, cache_key, configure
from repro.core.executor import (
    ParallelExecutor,
    WorkUnit,
    map_cached,
    resolve_jobs,
)
from repro.core.rng import RandomStreams
from repro.experiments.fig4 import run_fig4
from repro.experiments.measurement import compute_operating_point

# Cheap keys: tiny profiles, fast ladders.  Enough to exercise the pool
# without making the suite slow.
CHEAP_KEYS = ("udp:64", "dpdk:64")
SAMPLES = 20
N_REQUESTS = 600
SEED = 7


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test gets an empty in-memory cache and zeroed counters."""
    configure(ResultCache())
    instrument.reset()
    trace.disable()
    yield
    configure(ResultCache())
    instrument.reset()
    trace.disable()


# Module-level so it pickles for the process pool.
def _square(value):
    return value * value


def _bump_dotted_counters(n):
    """A unit that increments arbitrary dotted-name counters (PR 3)."""
    instrument.increment("sim.events_fired", n)
    instrument.increment("custom.widget.count", 2 * n)
    return n


def _unit_seeded_draw(name, seed):
    """A unit that derives its randomness the way experiments do."""
    streams = RandomStreams(seed)
    return float(streams.stream(name).random())


class TestWorkUnit:
    def test_run_invokes_fn(self):
        unit = WorkUnit(name="u", fn=_square, args=(3,))
        assert unit.run() == 9

    def test_kwargs_are_passed(self):
        unit = WorkUnit(name="u", fn=_unit_seeded_draw,
                        kwargs={"name": "a", "seed": 1})
        assert unit.run() == _unit_seeded_draw("a", 1)


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_is_auto(self):
        assert resolve_jobs(0) >= 1

    def test_negative_clamps_to_one(self):
        assert resolve_jobs(-3) == 1


class TestMapEquivalence:
    def test_results_in_submission_order(self):
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(8)]
        serial = ParallelExecutor(jobs=1).map(units)
        parallel = ParallelExecutor(jobs=2).map(units)
        assert serial == [i * i for i in range(8)]
        assert parallel == serial

    def test_seeded_units_identical_across_jobs(self):
        units = [
            WorkUnit(name=f"draw:{i}", fn=_unit_seeded_draw,
                     args=(f"draw:{i}", SEED))
            for i in range(6)
        ]
        serial = ParallelExecutor(jobs=1).map(units)
        parallel = ParallelExecutor(jobs=3).map(units)
        assert parallel == serial

    def test_unpicklable_units_fall_back_to_serial(self):
        captured = []

        def closure(value):  # not picklable: local closure
            captured.append(value)
            return value + 1

        units = [WorkUnit(name=f"c{i}", fn=closure, args=(i,))
                 for i in range(3)]
        executor = ParallelExecutor(jobs=2)
        assert executor.map(units) == [1, 2, 3]
        assert executor.fallbacks == 1
        assert captured == [0, 1, 2]


class TestCounterMerging:
    def test_probe_counts_identical_at_any_jobs(self):
        """Worker-side probe counters are shipped back and merged."""

        def run(jobs):
            instrument.reset()
            run_fig4(keys=CHEAP_KEYS, samples=SAMPLES,
                     n_requests=N_REQUESTS,
                     streams=RandomStreams(SEED), jobs=jobs)
            return instrument.value(instrument.PROBES)

        serial_probes = run(1)
        configure(ResultCache())  # drop cache so jobs=2 recomputes
        parallel_probes = run(2)
        assert serial_probes > 0
        assert parallel_probes == serial_probes

    def test_dotted_counters_merge_like_builtin_ones(self):
        """Counters take any dotted name; worker deltas merge identically."""
        units = [WorkUnit(name=f"bump{i}", fn=_bump_dotted_counters,
                          args=(i + 1,)) for i in range(4)]

        def run(jobs):
            instrument.reset()
            ParallelExecutor(jobs=jobs).map(units)
            return (instrument.value("sim.events_fired"),
                    instrument.value("custom.widget.count"))

        assert run(1) == (10, 20)
        assert run(2) == (10, 20)


def _trace_jsonl_for_jobs(jobs):
    """Run a tiny traced fig4 and serialize the buffer to JSONL bytes."""
    instrument.reset()
    configure(ResultCache())
    rec = trace.enable(metrics_interval_s=1e-3)
    try:
        run_fig4(keys=CHEAP_KEYS, samples=SAMPLES, n_requests=N_REQUESTS,
                 streams=RandomStreams(SEED), jobs=jobs)
        buffer = io.StringIO()
        trace.export_jsonl(buffer, rec)
        return buffer.getvalue(), rec.appended, rec.dropped
    finally:
        trace.disable()


class TestTraceDeterminism:
    def test_jsonl_byte_identical_jobs_1_vs_4(self):
        """The flight recorder is part of the --jobs contract: traces of
        the same study serialize to identical bytes at any job count."""
        serial, appended_1, dropped_1 = _trace_jsonl_for_jobs(1)
        parallel, appended_4, dropped_4 = _trace_jsonl_for_jobs(4)
        assert serial  # non-empty: the study actually traced
        assert serial == parallel
        assert appended_1 == appended_4
        assert dropped_1 == dropped_4

    def test_repeated_serial_runs_identical(self):
        first, _, _ = _trace_jsonl_for_jobs(1)
        second, _, _ = _trace_jsonl_for_jobs(1)
        assert first == second


class TestFig4Equivalence:
    def test_fig4_rows_identical_serial_vs_parallel(self):
        serial = run_fig4(keys=CHEAP_KEYS, samples=SAMPLES,
                          n_requests=N_REQUESTS,
                          streams=RandomStreams(SEED), jobs=1)
        configure(ResultCache())  # make jobs=2 recompute from scratch
        parallel = run_fig4(keys=CHEAP_KEYS, samples=SAMPLES,
                            n_requests=N_REQUESTS,
                            streams=RandomStreams(SEED), jobs=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.key == b.key
            assert a.host.throughput_rps == b.host.throughput_rps
            assert a.host.metrics.latency_p99 == b.host.metrics.latency_p99
            assert a.host.server_power_w == b.host.server_power_w
            assert a.snic.throughput_rps == b.snic.throughput_rps
            assert a.snic.metrics.latency_p99 == b.snic.metrics.latency_p99
            assert a.snic.server_power_w == b.snic.server_power_w


class TestMapCached:
    def test_hits_skip_submission_and_misses_are_stored(self):
        store = ResultCache()
        keys = [cache_key("sq", i) for i in range(4)]
        units = [WorkUnit(name=f"sq{i}", fn=_square, args=(i,))
                 for i in range(4)]
        store.put(keys[1], 111)  # pre-seed one hit
        executor = ParallelExecutor(jobs=1)
        results = map_cached(executor, units, keys, store=store)
        assert results == [0, 111, 4, 9]
        # Every miss landed in the cache.
        for i in (0, 2, 3):
            found, value = store.get(keys[i])
            assert found and value == i * i

    def test_operating_point_units_round_trip(self):
        key = cache_key("op", CHEAP_KEYS[0], "host")
        unit = WorkUnit(
            name="op",
            fn=compute_operating_point,
            args=(CHEAP_KEYS[0], "host", SEED, SAMPLES, N_REQUESTS),
        )
        store = ResultCache()
        first = map_cached(ParallelExecutor(jobs=1), [unit], [key],
                           store=store)
        second = map_cached(ParallelExecutor(jobs=1), [unit], [key],
                            store=store)
        assert second[0] is first[0]


class TestSerialBypass:
    def test_single_core_bypasses_pool(self, monkeypatch):
        import repro.core.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        executor = ParallelExecutor(jobs=4)
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(6)]
        assert executor.map(units) == [i * i for i in range(6)]
        assert executor.bypasses == 1

    def test_tiny_batches_bypass_after_first_estimate(self, monkeypatch):
        import repro.core.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 4)
        executor = ParallelExecutor(jobs=2)
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(4)]
        try:
            executor.map(units)  # first batch: no estimate yet, goes wide
            assert executor._seconds_per_unit is not None
            executor.map(units)  # microsecond units: estimate says serial
            assert executor.bypasses >= 1
        finally:
            executor.close()

    def test_knob_disables_bypass(self, monkeypatch):
        import repro.core.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        executor = ParallelExecutor(jobs=2, serial_bypass=False)
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(4)]
        try:
            assert executor.map(units) == [0, 1, 4, 9]
            assert executor.bypasses == 0
            assert executor._pool is not None  # the pool really ran
        finally:
            executor.close()

    def test_bypass_results_identical_to_pool(self):
        units = [
            WorkUnit(name=f"draw:{i}", fn=_unit_seeded_draw,
                     args=(f"draw:{i}", SEED))
            for i in range(5)
        ]
        bypassed = ParallelExecutor(jobs=4).map(units)
        with ParallelExecutor(jobs=4, serial_bypass=False) as pooled:
            assert pooled.map(units) == bypassed


class TestPoolReuse:
    def test_pool_persists_across_map_calls(self):
        with ParallelExecutor(jobs=2, serial_bypass=False) as executor:
            units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                     for i in range(4)]
            executor.map(units)
            first_pool = executor._pool
            assert first_pool is not None
            executor.map(units)
            assert executor._pool is first_pool

    def test_close_shuts_down_and_next_map_rebuilds(self):
        executor = ParallelExecutor(jobs=2, serial_bypass=False)
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(4)]
        try:
            executor.map(units)
            executor.close()
            assert executor._pool is None
            assert executor.map(units) == [0, 1, 4, 9]
            assert executor._pool is not None
        finally:
            executor.close()

    def test_context_manager_closes(self):
        with ParallelExecutor(jobs=2, serial_bypass=False) as executor:
            executor.map([WorkUnit(name="u", fn=_square, args=(2,)),
                          WorkUnit(name="v", fn=_square, args=(3,))])
        assert executor._pool is None


class TestChunking:
    def test_many_units_one_chunk_per_worker_slot(self):
        # 40 units over 2 workers -> at most workers*4 chunks, and the
        # results still come back flat, in submission order.
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(40)]
        with ParallelExecutor(jobs=2, serial_bypass=False) as executor:
            assert executor.map(units) == [i * i for i in range(40)]

    def test_chunked_counters_merge_exactly(self):
        units = [WorkUnit(name=f"bump{i}", fn=_bump_dotted_counters,
                          args=(i + 1,)) for i in range(10)]
        instrument.reset()
        with ParallelExecutor(jobs=2, serial_bypass=False) as executor:
            executor.map(units)
        assert instrument.value("sim.events_fired") == sum(range(1, 11))
        assert instrument.value("custom.widget.count") == 2 * sum(range(1, 11))


class TestBrokenPoolRecovery:
    def test_dead_pool_reruns_serially_without_double_count(self):
        from concurrent.futures.process import BrokenProcessPool

        import repro.core.executor as executor_module

        executor = ParallelExecutor(jobs=2, serial_bypass=False)
        units = [WorkUnit(name=f"bump{i}", fn=_bump_dotted_counters,
                          args=(i + 1,)) for i in range(4)]

        class _DeadPool:
            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        executor._pool = _DeadPool()
        instrument.reset()
        try:
            assert executor.map(units) == [1, 2, 3, 4]
            # Counters were merged exactly once (by the serial rerun).
            assert instrument.value("sim.events_fired") == 10
            assert executor.pool_restarts == 1
            assert executor._pool is None  # dead pool was torn down
        finally:
            executor.close()


# Module-level helpers for the supervised path (must pickle).
def _sleep_then_return(duration_s, value):
    import time as _time

    _time.sleep(duration_s)
    return value


def _raise_value_error(message):
    raise ValueError(message)


def _kill_self(value):
    import os as _os
    import signal as _signal

    _os.kill(_os.getpid(), _signal.SIGKILL)
    return value  # never reached


class TestMapSupervised:
    """Typed failure records: timeouts, crashes, and errors are data."""

    def test_success_matches_plain_map(self):
        from repro.core.executor import UnitFailure

        units = [WorkUnit(name=f"s{i}", fn=_square, args=(i,))
                 for i in range(4)]
        executor = ParallelExecutor(jobs=2)
        outcomes = executor.map_supervised(units)
        assert outcomes == [0, 1, 4, 9]
        assert not any(isinstance(o, UnitFailure) for o in outcomes)

    def test_timeout_surfaces_as_record_not_exception(self):
        from repro.core.executor import UnitFailure

        units = [
            WorkUnit(name="hang", fn=_sleep_then_return, args=(30.0, 1)),
            WorkUnit(name="quick", fn=_square, args=(3,)),
        ]
        executor = ParallelExecutor(jobs=2)
        outcomes = executor.map_supervised(units, unit_timeout_s=0.2)
        failure, ok = outcomes
        assert isinstance(failure, UnitFailure)
        assert failure.kind == UnitFailure.TIMEOUT
        assert failure.unit == "hang"
        assert failure.elapsed_s >= 0.2
        assert ok == 9  # the batchmate is unaffected (surgical kill)
        assert instrument.value(instrument.RUNFARM_TIMEOUTS) == 1

    def test_worker_death_surfaces_as_worker_lost(self):
        from repro.core.executor import UnitFailure

        units = [
            WorkUnit(name="victim", fn=_kill_self, args=(1,)),
            WorkUnit(name="survivor", fn=_square, args=(4,)),
        ]
        executor = ParallelExecutor(jobs=2)
        outcomes = executor.map_supervised(units)
        failure, ok = outcomes
        assert isinstance(failure, UnitFailure)
        assert failure.kind == UnitFailure.WORKER_LOST
        assert ok == 16
        assert instrument.value(instrument.RUNFARM_WORKER_LOST) == 1

    def test_raising_unit_surfaces_as_error_record(self):
        from repro.core.executor import UnitFailure

        units = [WorkUnit(name="boom", fn=_raise_value_error,
                          args=("no",))]
        executor = ParallelExecutor(jobs=1)
        (failure,) = executor.map_supervised(units)
        assert isinstance(failure, UnitFailure)
        assert failure.kind == UnitFailure.ERROR
        assert failure.error_type == "ValueError"
        assert "no" in failure.message
        assert "boom" in failure.describe()

    def test_counters_merge_only_from_successes(self):
        units = [WorkUnit(name=f"bump{i}", fn=_bump_dotted_counters,
                          args=(i + 1,)) for i in range(3)]
        executor = ParallelExecutor(jobs=2)
        executor.map_supervised(units)
        assert instrument.value("sim.events_fired") == 6
        assert instrument.value("custom.widget.count") == 12

    def test_unpicklable_units_run_in_process(self):
        from repro.core.executor import UnitFailure

        seen = []

        def closure(value):
            seen.append(value)
            return value + 1

        units = [WorkUnit(name=f"c{i}", fn=closure, args=(i,))
                 for i in range(3)]
        executor = ParallelExecutor(jobs=2)
        outcomes = executor.map_supervised(units)
        assert outcomes == [1, 2, 3]
        assert seen == [0, 1, 2]
        assert not any(isinstance(o, UnitFailure) for o in outcomes)

    def test_unpicklable_raising_unit_is_typed_too(self):
        from repro.core.executor import UnitFailure

        def bad():
            raise RuntimeError("in-process")

        (failure,) = ParallelExecutor(jobs=1).map_supervised(
            [WorkUnit(name="bad", fn=bad)])
        assert isinstance(failure, UnitFailure)
        assert failure.kind == UnitFailure.ERROR
        assert failure.error_type == "RuntimeError"


class TestUnitContentKey:
    def test_stable_and_distinct(self):
        from repro.core.executor import unit_content_key

        a1 = unit_content_key(WorkUnit(name="a", fn=_square, args=(1,)))
        a2 = unit_content_key(WorkUnit(name="a", fn=_square, args=(1,)))
        b = unit_content_key(WorkUnit(name="a", fn=_square, args=(2,)))
        assert a1 == a2
        assert a1 != b

    def test_unpicklable_unit_has_no_key(self):
        from repro.core.executor import unit_content_key

        unit = WorkUnit(name="c", fn=lambda: None)
        assert unit_content_key(unit) is None
