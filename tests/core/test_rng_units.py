"""Tests for random streams and unit conversions."""

import pytest

from repro.core import RandomStreams
from repro.core import units


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.stream("pktgen") is streams.stream("pktgen")

    def test_reproducible_across_instances(self):
        a = RandomStreams(42).stream("x").random(5)
        b = RandomStreams(42).stream("x").random(5)
        assert (a == b).all()

    def test_names_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not (a == b).all()

    def test_draw_order_isolation(self):
        """Drawing from one stream must not perturb another."""
        first = RandomStreams(7)
        first.stream("noise").random(100)
        a = first.stream("work").random(5)
        second = RandomStreams(7)
        b = second.stream("work").random(5)
        assert (a == b).all()

    def test_fork_changes_streams(self):
        base = RandomStreams(7)
        fork = base.fork(1)
        assert not (base.stream("x").random(5) == fork.stream("x").random(5)).all()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not (a == b).all()


class TestUnits:
    def test_time_helpers(self):
        assert units.microseconds(5) == pytest.approx(5e-6)
        assert units.nanoseconds(100) == pytest.approx(1e-7)
        assert units.milliseconds(2) == pytest.approx(2e-3)
        assert units.to_microseconds(1e-6) == pytest.approx(1.0)

    def test_gbps_round_trip(self):
        bps = units.gbps_to_bytes_per_second(100.0)
        assert units.bytes_per_second_to_gbps(bps) == pytest.approx(100.0)

    def test_100gbps_is_12_5_gigabytes(self):
        assert units.gbps_to_bytes_per_second(100.0) == pytest.approx(12.5e9)

    def test_packet_rate_1kb_at_100gbps(self):
        pps = units.packets_per_second(100.0, 1024)
        assert pps == pytest.approx(12.5e9 / 1024)

    def test_packet_rate_rejects_zero_size(self):
        with pytest.raises(ValueError):
            units.packets_per_second(10.0, 0)

    def test_line_rate_64b_at_100g_is_148_8mpps(self):
        """The canonical small-packet line-rate figure for 100 GbE."""
        pps = units.line_rate_pps(100.0, 64)
        assert pps == pytest.approx(148.8e6, rel=0.01)

    def test_line_rate_clamps_tiny_frames(self):
        assert units.line_rate_pps(100.0, 1) == units.line_rate_pps(100.0, 64)

    def test_kwh_conversion(self):
        assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)
