"""Vectorized queueing kernels vs their retained scalar oracles.

The fast paths in :mod:`repro.core.queueing` (closed-form Lindley,
bounded-buffer block fixed point, searchsorted batch scheduling) must be
*indistinguishable* from the scalar reference loops they replaced — same
keeps, same drops, same waits to 1e-12, and for the batch server the
same floats bit for bit (its arithmetic is expression-identical).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queueing import (
    QueueOutcome,
    bounded_waits,
    bounded_waits_reference,
    lindley_waits,
    lindley_waits_reference,
    outcome_to_metrics,
    simulate_batch_server,
    simulate_batch_server_reference,
    simulate_gg1,
)

ARRIVAL_CVS = (0.0, 0.5, 1.0, 2.0)
SIZES = (0, 1, 2, 10_000)


def _gaps(rng, n, cv, mean_gap=1.0):
    if cv == 0.0:
        return np.full(n, mean_gap)
    if cv == 1.0:
        return rng.exponential(mean_gap, size=n)
    shape = 1.0 / cv**2
    return rng.gamma(shape, mean_gap / shape, size=n)


def _assert_lindley_close(fast, slow, gaps, services):
    """Element-wise equality up to the closed form's cancellation floor.

    The closed form computes W = C - min(C); when the cumulative sum
    drifts to magnitude M the subtraction cannot resolve finer than
    ~eps*M, so the tolerance scales with the drift (1e-12 absolute for
    O(1) sums, proportionally wider for long overloaded runs).
    """
    assert fast.shape == slow.shape
    n = len(gaps)
    scale = 1.0
    if n > 1:
        increments = np.zeros(n)
        increments[1:] = services[:-1] - gaps[1:]
        scale = max(1.0, float(np.abs(np.cumsum(increments)).max()))
    np.testing.assert_allclose(fast, slow, atol=1e-12 * scale, rtol=0.0)


class TestLindleyEquivalence:
    @pytest.mark.parametrize("cv", ARRIVAL_CVS)
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_scalar_reference(self, cv, n):
        rng = np.random.default_rng(hash((cv, n)) % 2**32)
        gaps = _gaps(rng, n, cv)
        services = rng.exponential(0.9, size=n)  # near-critical load
        fast = lindley_waits(gaps, services)
        slow = lindley_waits_reference(gaps, services)
        _assert_lindley_close(fast, slow, gaps, services)

    def test_heavy_overload_matches(self):
        rng = np.random.default_rng(7)
        gaps = rng.exponential(1.0, size=5_000)
        services = rng.exponential(3.0, size=5_000)  # rho = 3
        _assert_lindley_close(
            lindley_waits(gaps, services),
            lindley_waits_reference(gaps, services), gaps, services)

    def test_result_not_aliased_to_scratch(self):
        # The kernel computes in a reused thread-local buffer; the array
        # it returns must survive a subsequent call unchanged.
        rng = np.random.default_rng(0)
        gaps = rng.exponential(1.0, size=256)
        services = rng.exponential(0.8, size=256)
        first = lindley_waits(gaps, services)
        copy = first.copy()
        lindley_waits(rng.exponential(1.0, size=256),
                      rng.exponential(2.0, size=256))
        np.testing.assert_array_equal(first, copy)

    @given(st.integers(min_value=0, max_value=400),
           st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_property_random_loads(self, n, rho):
        rng = np.random.default_rng(n * 1000 + int(rho * 100))
        gaps = rng.exponential(1.0, size=n)
        services = rng.exponential(rho, size=n)
        _assert_lindley_close(
            lindley_waits(gaps, services),
            lindley_waits_reference(gaps, services), gaps, services)


class TestBoundedWaitsEquivalence:
    # Spanning no-drop (huge limit), occasional-drop, drop-most (tiny
    # limit, exercising the fallback-to-oracle path after max passes).
    LIMITS = (0.0, 1e-6, 0.5, 2.0, 1e9)

    @pytest.mark.parametrize("limit", LIMITS)
    @pytest.mark.parametrize("cv", ARRIVAL_CVS)
    def test_matches_scalar_reference(self, limit, cv):
        rng = np.random.default_rng(int(limit * 1e3) % 997 + int(cv * 10))
        n = 6_000
        gaps = _gaps(rng, n, cv)
        arrivals = np.cumsum(gaps)
        services = rng.exponential(1.2, size=n)  # overloaded -> drops
        kept_fast, waits_fast = bounded_waits(arrivals, services, limit)
        kept_ref, waits_ref, _, _ = bounded_waits_reference(
            arrivals, services, limit)
        np.testing.assert_array_equal(kept_fast, kept_ref)
        np.testing.assert_allclose(waits_fast, waits_ref, atol=1e-12, rtol=0.0)

    @pytest.mark.parametrize("n", SIZES)
    def test_sizes(self, n):
        rng = np.random.default_rng(n + 13)
        arrivals = np.cumsum(rng.exponential(1.0, size=n))
        services = rng.exponential(1.5, size=n)
        kept_fast, waits_fast = bounded_waits(arrivals, services, 1.0)
        kept_ref, waits_ref, _, _ = bounded_waits_reference(
            arrivals, services, 1.0)
        np.testing.assert_array_equal(kept_fast, kept_ref)
        np.testing.assert_allclose(waits_fast, waits_ref, atol=1e-12, rtol=0.0)

    def test_negative_limit_drops_everything(self):
        arrivals = np.array([0.5, 1.0, 1.5])
        services = np.ones(3)
        kept, waits = bounded_waits(arrivals, services, -1.0)
        assert not kept.any() and waits.size == 0

    def test_spans_multiple_blocks(self):
        # > _DROP_BLOCK arrivals with drops in every block, so the carry
        # state (backlog, previous arrival) crosses block boundaries.
        rng = np.random.default_rng(42)
        n = 13_000
        arrivals = np.cumsum(rng.exponential(1.0, size=n))
        services = rng.exponential(2.0, size=n)
        kept_fast, waits_fast = bounded_waits(arrivals, services, 3.0)
        kept_ref, waits_ref, _, _ = bounded_waits_reference(
            arrivals, services, 3.0)
        assert 0 < kept_fast.sum() < n  # the case actually has drops
        np.testing.assert_array_equal(kept_fast, kept_ref)
        np.testing.assert_allclose(waits_fast, waits_ref, atol=1e-12, rtol=0.0)

    @given(st.integers(min_value=0, max_value=300),
           st.floats(min_value=0.2, max_value=3.0),
           st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_property_random_systems(self, n, rho, limit):
        rng = np.random.default_rng(n * 31 + int(rho * 7) + int(limit * 3))
        arrivals = np.cumsum(rng.exponential(1.0, size=n))
        services = rng.exponential(rho, size=n)
        kept_fast, waits_fast = bounded_waits(arrivals, services, limit)
        kept_ref, waits_ref, _, _ = bounded_waits_reference(
            arrivals, services, limit)
        np.testing.assert_array_equal(kept_fast, kept_ref)
        np.testing.assert_allclose(waits_fast, waits_ref, atol=1e-12, rtol=0.0)


def _outcomes_equal(fast: QueueOutcome, ref: QueueOutcome) -> None:
    np.testing.assert_array_equal(fast.arrivals, ref.arrivals)
    np.testing.assert_array_equal(fast.sojourns, ref.sojourns)
    np.testing.assert_array_equal(fast.services, ref.services)
    assert fast.dropped == ref.dropped
    assert set(fast.components) == set(ref.components)
    for name, values in ref.components.items():
        np.testing.assert_array_equal(fast.components[name], values)


class TestBatchServerEquivalence:
    # (batch_size, timeout, setup, per_item) corners: singletons,
    # timeout-driven, size-driven, setup-dominated, saturating.
    GRID = [
        (1, 0.0, 1e-4, 1e-5),
        (4, 1e-3, 5e-4, 1e-5),
        (16, 5e-4, 1e-3, 2e-6),
        (32, 1e-2, 2e-3, 1e-6),
        (8, 1e-6, 1e-5, 1e-4),
    ]

    @pytest.mark.parametrize("batch_size,timeout,setup,per_item", GRID)
    @pytest.mark.parametrize("cv", ARRIVAL_CVS)
    def test_bit_exact_vs_reference(self, batch_size, timeout, setup,
                                    per_item, cv):
        # Identical float expressions on identical RNG draws: the two
        # paths must agree bit for bit, not just to a tolerance.
        rate = 1.0 / max(per_item, setup / batch_size) * 0.6
        fast = simulate_batch_server(
            rate, 3_000, np.random.default_rng(5), batch_size, timeout,
            setup, per_item, arrival_cv=cv)
        ref = simulate_batch_server_reference(
            rate, 3_000, np.random.default_rng(5), batch_size, timeout,
            setup, per_item, arrival_cv=cv)
        _outcomes_equal(fast, ref)

    @given(st.integers(min_value=1, max_value=64),
           st.floats(min_value=0.0, max_value=1e-2),
           st.floats(min_value=0.0, max_value=5e-3),
           st.floats(min_value=1e-7, max_value=1e-3),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_property_random_engines(self, batch_size, timeout, setup,
                                     per_item, n):
        seed = batch_size * 7 + n
        fast = simulate_batch_server(
            2_000.0, n, np.random.default_rng(seed), batch_size, timeout,
            setup, per_item)
        ref = simulate_batch_server_reference(
            2_000.0, n, np.random.default_rng(seed), batch_size, timeout,
            setup, per_item)
        _outcomes_equal(fast, ref)


class TestGG1DropPathEquivalence:
    def test_simulate_gg1_uses_exact_drop_kernel(self):
        # End-to-end: the gg1 wrapper with a queue_limit reproduces the
        # scalar recursion's kept set and sojourns.
        rng = np.random.default_rng(11)
        outcome = simulate_gg1(1.5, lambda r, n: r.exponential(1.0, size=n),
                               4_000, rng, queue_limit=2.0)
        rng = np.random.default_rng(11)
        gaps = rng.exponential(1.0 / 1.5, size=4_000)
        arrivals = np.cumsum(gaps)
        services = rng.exponential(1.0, size=4_000)
        kept, waits, _, _ = bounded_waits_reference(arrivals, services, 2.0)
        assert outcome.dropped == int(4_000 - kept.sum())
        np.testing.assert_allclose(
            outcome.sojourns, waits + services[kept], atol=1e-12, rtol=0.0)


class TestOutcomeToMetricsGuards:
    def test_empty_outcome_reports_zero_rate(self):
        outcome = QueueOutcome(sojourns=np.empty(0), services=np.empty(0),
                               arrivals=np.empty(0), dropped=5)
        metrics = outcome_to_metrics(outcome, offered_rate=100.0,
                                     bytes_per_request=64)
        assert metrics.completed == 0
        assert metrics.completed_rate == 0.0
        assert metrics.dropped == 5
        assert metrics.latency_p99 == float("inf")

    def test_single_arrival_at_time_zero_has_no_rate(self):
        # run_span == 0: a degenerate span carries no rate information
        # and must not divide by zero.
        outcome = QueueOutcome(sojourns=np.array([1e-3]),
                               services=np.array([1e-3]),
                               arrivals=np.array([0.0]))
        metrics = outcome_to_metrics(outcome, offered_rate=100.0,
                                     bytes_per_request=64,
                                     warmup_fraction=0.0)
        assert metrics.completed == 1
        assert metrics.completed_rate == 0.0
        assert np.isfinite(metrics.latency_p99)

    def test_zero_gap_burst_has_no_rate(self):
        outcome = QueueOutcome(sojourns=np.full(4, 1e-3),
                               services=np.full(4, 1e-3),
                               arrivals=np.zeros(4))
        metrics = outcome_to_metrics(outcome, offered_rate=100.0,
                                     bytes_per_request=64,
                                     warmup_fraction=0.0)
        assert metrics.completed_rate == 0.0
        assert metrics.goodput_gbps == 0.0
