"""Tests for the closed-loop load generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closedloop import simulate_closed_loop


def constant(value):
    return lambda rng, n: np.full(n, value)


class TestClosedLoop:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_closed_loop(0, 1, constant(1.0), 10, rng)
        with pytest.raises(ValueError):
            simulate_closed_loop(1, 0, constant(1.0), 10, rng)

    def test_depth_one_throughput_is_inverse_service(self):
        rng = np.random.default_rng(0)
        result = simulate_closed_loop(1, 4, constant(1e-3), 5000, rng)
        assert result.throughput_rps == pytest.approx(1000.0, rel=0.01)
        assert result.mean_latency_s == pytest.approx(1e-3, rel=0.01)

    def test_depth_scales_throughput_until_cores_saturate(self):
        """With 4 cores, depth 1->4 scales ~linearly; beyond 4 it cannot."""
        rng = np.random.default_rng(1)
        results = {
            depth: simulate_closed_loop(depth, 4, constant(1e-3), 8000,
                                        np.random.default_rng(1))
            for depth in (1, 4, 16)
        }
        assert results[4].throughput_rps == pytest.approx(
            4 * results[1].throughput_rps, rel=0.05
        )
        assert results[16].throughput_rps == pytest.approx(
            results[4].throughput_rps, rel=0.05
        )

    def test_excess_depth_buys_only_latency(self):
        """Past saturation, outstanding requests just queue (the iodepth
        lesson fio users learn)."""
        rng = np.random.default_rng(2)
        shallow = simulate_closed_loop(4, 4, constant(1e-3), 8000,
                                       np.random.default_rng(2))
        deep = simulate_closed_loop(32, 4, constant(1e-3), 8000,
                                    np.random.default_rng(2))
        assert deep.mean_latency_s > 5 * shallow.mean_latency_s

    def test_closed_loop_never_overloads(self):
        """Unlike open loop, latency stays bounded at any depth."""
        rng = np.random.default_rng(3)
        result = simulate_closed_loop(
            64, 2, lambda r, n: r.exponential(1e-3, size=n), 20_000, rng
        )
        assert result.p99_latency_s < 64 * 1e-3 * 3

    def test_think_time_lowers_throughput(self):
        fast = simulate_closed_loop(4, 4, constant(1e-3), 4000,
                                    np.random.default_rng(4))
        slow = simulate_closed_loop(4, 4, constant(1e-3), 4000,
                                    np.random.default_rng(4),
                                    think_time_s=2e-3)
        assert slow.throughput_rps < fast.throughput_rps

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_littles_law_property(self, depth, cores):
        rng = np.random.default_rng(depth * 100 + cores)
        result = simulate_closed_loop(
            depth, cores, lambda r, n: r.exponential(5e-4, size=n), 6000, rng
        )
        assert result.littles_law_error() < 0.15

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_throughput_monotone_in_depth(self, depth):
        a = simulate_closed_loop(depth, 8,
                                 lambda r, n: r.exponential(1e-4, size=n),
                                 5000, np.random.default_rng(9))
        b = simulate_closed_loop(depth + 1, 8,
                                 lambda r, n: r.exponential(1e-4, size=n),
                                 5000, np.random.default_rng(9))
        assert b.throughput_rps >= 0.95 * a.throughput_rps
