"""Unit tests for the discrete-event kernel."""

import pytest

from repro.core import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    event = sim.timeout(10.0)
    event.add_callback(lambda e: fired.append(sim.now))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=0.5)


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for label in "abc":
        event = sim.timeout(1.0, label)
        event.add_callback(lambda e: order.append(e.value))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_trigger_twice_raises():
    sim = Simulator()
    event = sim.event()
    event.trigger(1)
    with pytest.raises(SimulationError):
        event.trigger(2)


def test_callback_on_already_fired_event_runs_later():
    sim = Simulator()
    event = sim.event()
    event.trigger("v")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == []  # deferred to the event loop
    sim.run()
    assert seen == ["v"]


def test_process_sequences_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(1.0)
        trace.append(("mid", sim.now))
        yield sim.timeout(2.0)
        trace.append(("end", sim.now))
        return "result"

    process = sim.process(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]
    assert process.fired
    assert process.value == "result"


def test_process_receives_timeout_value():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, "payload")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_process_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def ticker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            trace.append((name, sim.now))

    sim.process(ticker("fast", 1.0))
    sim.process(ticker("slow", 1.5))
    sim.run()
    # At t=3.0 both fire; slow's timeout was scheduled earlier (at t=1.5)
    # so FIFO tie-breaking runs it first.
    assert trace == [
        ("fast", 1.0),
        ("slow", 1.5),
        ("fast", 2.0),
        ("slow", 3.0),
        ("fast", 3.0),
        ("slow", 4.5),
    ]


def test_process_interrupt_stops_generator():
    sim = Simulator()
    progressed = []

    def proc():
        yield sim.timeout(10.0)
        progressed.append(True)

    process = sim.process(proc())
    sim.run(until=1.0)
    process.interrupt()
    sim.run()
    assert progressed == []
    assert process.fired


def test_any_of_fires_on_first():
    sim = Simulator()
    first = sim.any_of([sim.timeout(2.0, "late"), sim.timeout(1.0, "early")])
    sim.run()
    assert first.value == "early"


def test_all_of_collects_values_in_order():
    sim = Simulator()
    combined = sim.all_of([sim.timeout(2.0, "a"), sim.timeout(1.0, "b")])
    sim.run()
    assert combined.value == ["a", "b"]


def test_all_of_empty_list():
    sim = Simulator()
    combined = sim.all_of([])
    sim.run()
    assert combined.fired
    assert combined.value == []


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(3.0)
    assert sim.peek() == 3.0
    sim.run()
    assert sim.peek() == float("inf")


def test_nested_process_waits_on_subprocess():
    sim = Simulator()
    trace = []

    def child():
        yield sim.timeout(2.0)
        return "child-done"

    def parent():
        result = yield sim.process(child())
        trace.append((result, sim.now))

    sim.process(parent())
    sim.run()
    assert trace == [("child-done", 2.0)]


def test_determinism_across_runs():
    def build_and_run():
        sim = Simulator()
        log = []

        def proc(name, delay):
            yield sim.timeout(delay)
            log.append(name)

        for index in range(10):
            sim.process(proc(f"p{index}", (index * 7) % 3 + 0.5))
        sim.run()
        return log

    assert build_and_run() == build_and_run()
