"""Tests for the closed-form queueing estimators behind warm starts."""

import numpy as np
import pytest

from repro.core.analytic import (
    batch_capacity,
    erlang_c,
    mg1_sojourn_p99,
    mg1_wait_mean,
    mmc_wait_mean,
    sharded_capacity,
    slo_capacity,
)
from repro.core.queueing import simulate_gg1


class TestErlangC:
    def test_single_server_equals_utilization(self):
        # M/M/1: P(wait) = rho exactly.
        assert erlang_c(1, 0.3) == pytest.approx(0.3)
        assert erlang_c(1, 0.95) == pytest.approx(0.95)

    def test_saturated_always_waits(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 9.0) == 1.0

    def test_idle_never_waits(self):
        assert erlang_c(8, 0.0) == 0.0

    def test_more_servers_wait_less(self):
        # Same per-server utilization, more servers -> less waiting
        # (economy of scale, a classic Erlang C property).
        assert erlang_c(16, 12.8) < erlang_c(4, 3.2) < erlang_c(1, 0.8)

    def test_known_value(self):
        # c=2, a=1 (rho=0.5): C = 1/3 by hand.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -0.5)


class TestMMc:
    def test_mm1_closed_form(self):
        # M/M/1: Wq = rho * S / (1 - rho).
        rate, service = 900.0, 1e-3
        rho = rate * service
        expected = rho * service / (1.0 - rho)
        assert mmc_wait_mean(rate, service, 1) == pytest.approx(expected)

    def test_unstable_is_infinite(self):
        assert mmc_wait_mean(2000.0, 1e-3, 1) == float("inf")

    def test_zero_rate_no_wait(self):
        assert mmc_wait_mean(0.0, 1e-3, 4) == 0.0


class TestMG1:
    def test_exponential_service_matches_mm1(self):
        # scv=1 reduces P-K to the M/M/1 mean wait.
        assert mg1_wait_mean(500.0, 1e-3, 1.0) == pytest.approx(
            mmc_wait_mean(500.0, 1e-3, 1))

    def test_deterministic_service_halves_wait(self):
        # scv=0 gives exactly half the exponential wait (P-K).
        assert mg1_wait_mean(500.0, 1e-3, 0.0) == pytest.approx(
            0.5 * mg1_wait_mean(500.0, 1e-3, 1.0))

    def test_unstable_is_infinite(self):
        assert mg1_wait_mean(1500.0, 1e-3, 1.0) == float("inf")
        assert mg1_sojourn_p99(1500.0, 1e-3, 1.0) == float("inf")

    def test_idle_p99_is_service(self):
        assert mg1_sojourn_p99(0.0, 1e-3, 1.0) == pytest.approx(1e-3)

    def test_p99_estimate_tracks_simulation(self):
        # The tail approximation should land within ~35% of a simulated
        # M/M/1 p99 at moderate load — close enough to warm-start a
        # sweep, which is all it is for.
        rate, service = 700.0, 1e-3
        outcome = simulate_gg1(
            rate, lambda r, n: r.exponential(service, size=n),
            200_000, np.random.default_rng(3))
        simulated = float(np.percentile(outcome.sojourns, 99.0))
        analytic = mg1_sojourn_p99(rate, service, 1.0)
        assert abs(analytic - simulated) / simulated < 0.35


class TestCapacities:
    def test_sharded_capacity_scales_with_cores(self):
        assert sharded_capacity(1e-3, 8) == pytest.approx(8_000.0)

    def test_batch_capacity_amortizes_setup(self):
        # Full batches amortize setup: capacity approaches 1/per_item.
        small = batch_capacity(1e-3, 1e-5, 4)
        large = batch_capacity(1e-3, 1e-5, 128)
        assert small < large < 1.0 / 1e-5

    def test_validation(self):
        with pytest.raises(ValueError):
            sharded_capacity(0.0, 4)
        with pytest.raises(ValueError):
            sharded_capacity(1e-3, 0)
        with pytest.raises(ValueError):
            batch_capacity(1e-3, 1e-5, 0)
        with pytest.raises(ValueError):
            batch_capacity(0.0, 0.0, 8)


class TestSloCapacity:
    def test_no_slo_returns_stability_capacity(self):
        assert slo_capacity(1e-3, 1.0, 4, None) == pytest.approx(4_000.0)

    def test_slo_bound_lowers_capacity(self):
        unconstrained = slo_capacity(1e-3, 1.0, 4, None)
        constrained = slo_capacity(1e-3, 1.0, 4, slo_p99=5e-3)
        assert 0 < constrained < unconstrained

    def test_loose_slo_approaches_stability(self):
        loose = slo_capacity(1e-3, 1.0, 4, slo_p99=10.0)
        assert loose == pytest.approx(4_000.0, rel=1e-2)

    def test_capacity_found_meets_the_slo(self):
        slo = 4e-3
        capacity = slo_capacity(1e-3, 1.0, 4, slo_p99=slo)
        assert mg1_sojourn_p99(capacity / 4, 1e-3, 1.0) <= slo

    def test_impossible_slo_returns_floor(self):
        # SLO below the bare service time: nothing can meet it.
        capacity = slo_capacity(1e-3, 1.0, 4, slo_p99=1e-5)
        assert capacity == pytest.approx(4_000.0 * 1e-3)
