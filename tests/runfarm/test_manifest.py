"""Run manifest: atomic JSONL journaling and last-record-wins replay."""

from __future__ import annotations

import json
import os

from repro.runfarm import manifest as mf
from repro.runfarm.manifest import ManifestState, RunManifest, iter_records


def _begin(manifest, **overrides):
    kwargs = dict(verb="fig4", seed=7, samples=20, requests=600,
                  tier="smoke", jobs=2, code_version="test")
    kwargs.update(overrides)
    return manifest.begin_generation(**kwargs)


class TestAppendAndLoad:
    def test_directory_path_resolves_to_manifest_file(self, tmp_path):
        run_dir = tmp_path / "run"
        manifest = RunManifest(str(run_dir))
        assert manifest.path == str(run_dir / mf.MANIFEST_NAME)
        _begin(manifest)
        # load() accepts the directory too.
        state = RunManifest.load(str(run_dir))
        assert state.generations == 1

    def test_header_round_trips(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        _begin(manifest, seed=99, argv=["fig4", "--smoke"])
        state = RunManifest.load(manifest.path)
        assert state.header["verb"] == "fig4"
        assert state.header["seed"] == 99
        assert state.header["argv"] == ["fig4", "--smoke"]
        assert state.header["code_version"] == "test"

    def test_last_record_wins(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        manifest.record_unit("k1", "unit-a", mf.RUNNING, attempt=1)
        manifest.record_unit("k1", "unit-a", mf.TIMEOUT, attempt=1,
                             elapsed_s=1.0, error="deadline")
        manifest.record_unit("k1", "unit-a", mf.RUNNING, attempt=2)
        manifest.record_unit("k1", "unit-a", mf.DONE, attempt=2,
                             artifact="abc123")
        state = RunManifest.load(manifest.path)
        record = state.units["k1"]
        assert record.status == mf.DONE
        assert record.attempt == 2
        assert record.artifact == "abc123"
        assert record.complete
        assert state.done_keys() == frozenset({"k1"})

    def test_running_units_are_incomplete(self, tmp_path):
        """A unit caught mid-flight by a dead driver re-executes."""
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        manifest.record_unit("done", "a", mf.DONE, attempt=1)
        manifest.record_unit("inflight", "b", mf.RUNNING, attempt=1)
        state = RunManifest.load(manifest.path)
        assert state.done_keys() == frozenset({"done"})
        assert [r.key for r in state.incomplete()] == ["inflight"]

    def test_counts_and_summary(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        manifest.record_unit("a", "a", mf.DONE)
        manifest.record_unit("b", "b", mf.CACHED)
        manifest.record_unit("c", "c", mf.QUARANTINED)
        state = RunManifest.load(manifest.path)
        assert state.counts() == {mf.DONE: 1, mf.CACHED: 1,
                                  mf.QUARANTINED: 1}
        assert "2/3 units complete" in state.summary()
        assert "1 quarantined" in state.summary()


class TestCrashTolerance:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        """A SIGKILLed writer leaves at most one partial line."""
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        manifest.record_unit("k1", "a", mf.DONE, attempt=1)
        with open(manifest.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "unit", "key": "k2", "sta')
        state = RunManifest.load(manifest.path)
        assert state.skipped_lines == 1
        assert state.done_keys() == frozenset({"k1"})

    def test_garbage_lines_never_fatal(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        with open(manifest.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('[1, 2, 3]\n')  # valid JSON, wrong shape
            handle.write('{"type": "unit"}\n')  # unit without a key
        manifest.record_unit("k1", "a", mf.DONE)
        state = RunManifest.load(manifest.path)
        assert state.skipped_lines == 3
        assert state.done_keys() == frozenset({"k1"})

    def test_appends_are_single_writes(self, tmp_path):
        """Every record lands as one complete newline-terminated line."""
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        for i in range(50):
            manifest.record_unit(f"k{i}", f"u{i}", mf.DONE, attempt=1)
        with open(manifest.path, "rb") as handle:
            data = handle.read()
        assert data.endswith(b"\n")
        lines = data.decode("utf-8").splitlines()
        assert len(lines) == 51  # header + 50 units
        for line in lines:
            json.loads(line)  # every line parses


class TestGenerations:
    def test_generation_increments_across_resumes(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        assert _begin(manifest) == 1
        manifest.record_unit("k1", "a", mf.DONE)
        # A resume opens the same file and appends a new header.
        again = RunManifest(str(tmp_path))
        assert _begin(again) == 2
        state = RunManifest.load(manifest.path)
        assert state.generations == 2
        # The first generation's header is preserved as *the* header.
        assert state.header["generation"] == 1

    def test_iter_records_in_file_order(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        manifest.record_unit("k1", "a", mf.RUNNING, attempt=1)
        manifest.record_unit("k1", "a", mf.DONE, attempt=1)
        kinds = [r["type"] for r in iter_records(manifest.path)]
        assert kinds == ["run", "unit", "unit"]

    def test_state_run_dir(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        _begin(manifest)
        state = RunManifest.load(manifest.path)
        assert state.run_dir == str(tmp_path)
        assert os.path.isdir(state.run_dir)
