"""CLI run-farm flags: supervised runs, resume byte-identity, chaos
injection, quarantine exit codes, and driver crash-recovery.

The acceptance criterion from the issue lives here: a run killed with
``kill -9`` mid-flight, resumed with ``--resume``, completes without
re-running finished units and produces byte-identical artifacts.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import EXIT_PARTIAL, build_parser, main
from repro.core import instrument
from repro.core.cache import ResultCache, configure
from repro.runfarm import manifest as mf
from repro.runfarm.manifest import RunManifest

# Cheap fidelity shared by every CLI invocation here.
FIDELITY = ["--samples", "20", "--requests", "600"]


@pytest.fixture(autouse=True)
def _fresh_state():
    configure(ResultCache())
    instrument.reset()
    yield
    configure(ResultCache())
    instrument.reset()


class TestParserFlags:
    def test_runfarm_flags_before_or_after_verb(self):
        before = build_parser().parse_args(
            ["--run-dir", "/tmp/r", "--unit-timeout", "5",
             "--max-unit-attempts", "2", "fig4"])
        assert before.run_dir == "/tmp/r"
        assert before.unit_timeout == 5.0
        assert before.max_unit_attempts == 2
        after = build_parser().parse_args(
            ["fig4", "--resume", "/tmp/r", "--unit-timeout", "5"])
        assert after.resume == "/tmp/r"
        assert after.unit_timeout == 5.0

    def test_defaults_leave_supervision_off(self):
        args = build_parser().parse_args(["fig4"])
        assert args.run_dir is None
        assert args.resume is None
        assert args.unit_timeout is None
        assert args.max_unit_attempts is None

    def test_nonpositive_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--unit-timeout", "0", "fig7"])
        assert "--unit-timeout" in capsys.readouterr().err

    def test_attempts_below_one_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--max-unit-attempts", "0", "fig7"])
        assert "--max-unit-attempts" in capsys.readouterr().err

    def test_run_dir_and_resume_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--run-dir", "/tmp/a", "--resume", "/tmp/b", "fig7"])
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resume_requires_existing_manifest(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["--resume", str(tmp_path / "nope"), "fig7"])
        assert "no manifest" in capsys.readouterr().err


class TestSupervisedRun:
    def test_run_dir_journals_and_resume_is_byte_identical(
            self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        argv = FIDELITY + ["--jobs", "2", "fig4", "--smoke"]

        assert main(argv + ["--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr()
        assert "runfarm" in first.err
        state = RunManifest.load(str(run_dir))
        assert state.units and state.incomplete() == []
        assert (run_dir / "artifacts").is_dir()

        assert main(argv + ["--resume", str(run_dir)]) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # byte-identical artifact
        assert "resuming" in second.err
        assert "probes: 0 simulated" in second.err  # nothing re-simulated
        assert RunManifest.load(str(run_dir)).generations == 2

    def test_supervised_output_matches_unsupervised(self, tmp_path,
                                                    capsys):
        argv = FIDELITY + ["--jobs", "2", "fig4", "--smoke"]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        configure(ResultCache())  # drop the in-memory cache between runs
        assert main(argv + ["--run-dir", str(tmp_path / "run")]) == 0
        assert capsys.readouterr().out == baseline

    def test_resume_rejects_wrong_verb(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(FIDELITY + ["fig7", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(FIDELITY + ["fig4", "--resume", str(run_dir)])
        assert "recorded by 'fig7'" in capsys.readouterr().err

    def test_resume_adopts_original_fidelity(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["--samples", "20", "--requests", "600", "--seed",
                     "11", "fig7", "--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr().out
        configure(ResultCache())
        # Contradictory flags on the resume line are overridden by the
        # manifest header, so the output still matches.
        assert main(["--samples", "99", "--requests", "9999", "--seed",
                     "1", "fig7", "--resume", str(run_dir)]) == 0
        assert capsys.readouterr().out == first


class TestTopologyHeader:
    def test_cluster_run_records_fabric_topology(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(FIDELITY + ["cluster", "--smoke",
                                "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        header = RunManifest.load(str(run_dir)).header
        assert header["topology"] == "leafspine:r2xn4:s2:host+bf2:ecn"

    def test_single_node_verbs_record_single_topology(self, tmp_path,
                                                      capsys):
        run_dir = tmp_path / "run"
        assert main(FIDELITY + ["fig7", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        header = RunManifest.load(str(run_dir)).header
        assert header["topology"] == "single:host+bf2"

    def test_resume_rejects_topology_mismatch(self, tmp_path, capsys):
        from repro.core.cache import CODE_VERSION

        run_dir = tmp_path / "run"
        RunManifest(str(run_dir)).begin_generation(
            verb="cluster", seed=2023, samples=20, requests=600,
            tier="smoke", jobs=1, code_version=CODE_VERSION,
            topology="leafspine:r9xn9:s9:host+bf2:ecn")
        with pytest.raises(SystemExit):
            main(FIDELITY + ["cluster", "--smoke",
                             "--resume", str(run_dir)])
        err = capsys.readouterr().err
        assert "leafspine:r9xn9:s9:host+bf2:ecn" in err
        assert "leafspine:r2xn4:s2:host+bf2:ecn" in err

    def test_headerless_manifest_still_resumes(self, tmp_path, capsys):
        # Manifests written before the topology field existed carry no
        # topology; resume must not invent a mismatch.
        run_dir = tmp_path / "run"
        assert main(FIDELITY + ["fig7", "--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr().out
        configure(ResultCache())
        # Strip the topology field to simulate an old-format manifest.
        manifest_path = run_dir / "manifest.jsonl"
        records = [json.loads(line) for line in
                   manifest_path.read_text().splitlines()]
        for record in records:
            record.pop("topology", None)
        manifest_path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records))
        assert main(FIDELITY + ["fig7", "--resume", str(run_dir)]) == 0
        assert capsys.readouterr().out == first


class TestChaosInjection:
    def test_worker_kills_are_requeued_with_identical_output(
            self, tmp_path, capsys, monkeypatch):
        argv = FIDELITY + ["--jobs", "2", "sensitivity", "--smoke"]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        configure(ResultCache())
        monkeypatch.setenv("REPRO_CHAOS_KILL_NTH", "2")
        assert main(argv + ["--run-dir", str(tmp_path / "run")]) == 0
        chaos = capsys.readouterr()
        assert chaos.out == baseline
        assert instrument.value(instrument.RUNFARM_WORKER_LOST) > 0


class TestQuarantineDegradation:
    # Deterministic poison pills: chaos kills every worker on its first
    # attempt, and a one-attempt budget quarantines every unit — no
    # dependence on real unit runtimes.
    def test_partial_spec_exits_3_with_notice_and_artifact(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_KILL_NTH", "1")
        artifact = tmp_path / "mb.json"
        code = main(FIDELITY + [
            "--jobs", "2", "microburst", "--smoke",
            "--run-dir", str(tmp_path / "run"),
            "--max-unit-attempts", "1",
            "--json", str(artifact),
        ])
        assert code == EXIT_PARTIAL
        out = capsys.readouterr().out
        assert "PARTIAL RESULTS" in out
        assert "--resume" in out
        doc = json.loads(artifact.read_text())
        assert doc["partial"] is True
        assert doc["result"] is None
        assert doc["quarantined"]
        state = RunManifest.load(str(tmp_path / "run"))
        assert state.quarantined()

    def test_quarantined_run_resumes_clean(self, tmp_path, capsys,
                                           monkeypatch):
        run_dir = tmp_path / "run"
        argv = FIDELITY + ["--jobs", "2", "microburst", "--smoke"]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        configure(ResultCache())
        monkeypatch.setenv("REPRO_CHAOS_KILL_NTH", "1")
        assert main(argv + ["--run-dir", str(run_dir),
                            "--max-unit-attempts", "1"]) == EXIT_PARTIAL
        capsys.readouterr()
        configure(ResultCache())
        monkeypatch.delenv("REPRO_CHAOS_KILL_NTH")
        # Resume with the fault gone: completes, and the output matches
        # an uninterrupted run byte for byte.
        assert main(argv + ["--resume", str(run_dir)]) == 0
        assert capsys.readouterr().out == baseline


class TestDriverCrashRecovery:
    def test_kill9_mid_run_then_resume_byte_identical(self, tmp_path):
        """Acceptance criterion: kill -9 the driver, resume, same bytes."""
        run_dir = tmp_path / "run"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
        )
        argv = [sys.executable, "-m", "repro", "--jobs", "2",
                "--samples", "20", "--requests", "600", "fig4",
                "--smoke"]

        victim = subprocess.Popen(
            argv + ["--run-dir", str(run_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
        # Wait until at least one unit has completed but the run has
        # not finished, then SIGKILL the whole driver.
        manifest_path = run_dir / "manifest.jsonl"
        deadline = time.time() + 60
        progressed = False
        while time.time() < deadline and victim.poll() is None:
            if manifest_path.exists():
                state = RunManifest.load(str(manifest_path))
                if state.done_keys():
                    progressed = True
                    break
            time.sleep(0.02)
        if victim.poll() is not None:
            pytest.skip("run finished before it could be killed")
        assert progressed, "driver never completed a unit within 60s"
        victim.kill()
        victim.wait(timeout=30)

        interrupted = RunManifest.load(str(manifest_path))
        assert interrupted.done_keys()  # partial progress survived

        resumed = subprocess.run(
            argv + ["--resume", str(run_dir)], env=env,
            capture_output=True, timeout=300)
        assert resumed.returncode == 0, resumed.stderr.decode()
        baseline = subprocess.run(
            argv, env=env, capture_output=True, timeout=300)
        assert baseline.returncode == 0, baseline.stderr.decode()
        # Byte-identical artifact despite the kill -9 mid-run.
        assert resumed.stdout == baseline.stdout

        final = RunManifest.load(str(manifest_path))
        assert final.incomplete() == []
        assert final.generations == 2
        # Finished units were not re-run: every key completed before the
        # kill is recorded as cached (served from the artifact store) in
        # the resume generation.
        replayed = {}
        for record in _generation_records(str(manifest_path), 2):
            replayed[record["key"]] = record["status"]
        for key in interrupted.done_keys():
            assert replayed.get(key) == mf.CACHED


def _generation_records(path, generation):
    """Unit records appended after the ``generation``-th run header."""
    from repro.runfarm.manifest import iter_records

    current = 0
    for record in iter_records(path):
        if record.get("type") == "run":
            current = record.get("generation", 0)
        elif record.get("type") == "unit" and current == generation:
            yield record
