"""Run supervisor: retries, quarantine, resume accounting, and the
SupervisedExecutor drop-in seams."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core import instrument
from repro.core.cache import ResultCache, cache_key, configure
from repro.core.executor import UnitFailure, WorkUnit, map_cached
from repro.faults.retry import RetryPolicy
from repro.runfarm import manifest as mf
from repro.runfarm.manifest import RunManifest
from repro.runfarm.supervisor import (
    QuarantinedUnitError,
    RunSupervisor,
    SupervisedExecutor,
    SupervisorConfig,
    load_prior_done,
)


@pytest.fixture(autouse=True)
def _fresh_state():
    configure(ResultCache())
    instrument.reset()
    yield
    configure(ResultCache())
    instrument.reset()


# Module-level so they pickle for supervised worker processes.
def _square(value):
    return value * value


def _flaky_square(value, sentinel_dir):
    """SIGKILLs itself on the first attempt, succeeds on the second."""
    marker = os.path.join(sentinel_dir, "attempted")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("1")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _hang(duration_s):
    time.sleep(duration_s)
    return "done"


def _raise(message):
    raise ValueError(message)


def _fast_policy(max_attempts=2):
    return RetryPolicy(timeout_s=0.01, max_attempts=max_attempts,
                       backoff_factor=1.0, jitter_fraction=0.0)


def _supervisor(tmp_path, *, config=None, prior_done=frozenset()):
    manifest = RunManifest(str(tmp_path))
    manifest.begin_generation(verb="test", seed=1, samples=1, requests=1,
                              tier="smoke", jobs=2, code_version="test")
    return RunSupervisor(
        manifest=manifest,
        config=config or SupervisorConfig(retry=_fast_policy()),
        prior_done=prior_done,
        rng=np.random.default_rng(0),
    )


class TestRunBatch:
    def test_happy_path_records_done(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        sup = _supervisor(tmp_path)
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(4)]
        keys = [cache_key("sup-happy", i) for i in range(4)]
        store = ResultCache()
        results = sup.run_batch(ParallelExecutor(2), units, keys, store)
        assert results == [0, 1, 4, 9]
        state = RunManifest.load(sup.manifest.path)
        assert len(state.done_keys()) == 4
        assert all(r.status == mf.DONE for r in state.units.values())
        assert sup.units_completed == 4
        assert sup.units_quarantined == 0

    def test_cache_hits_record_cached_and_resumed(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        store = ResultCache()
        key = cache_key("sup-hit", 3)
        store.put(key, 9)
        sup = _supervisor(tmp_path, prior_done=frozenset({key}))
        units = [WorkUnit(name="u3", fn=_square, args=(3,))]
        results = sup.run_batch(ParallelExecutor(1), units, [key], store)
        assert results == [9]
        state = RunManifest.load(sup.manifest.path)
        assert state.units[key].status == mf.CACHED
        assert sup.units_resumed == 1
        assert instrument.value(instrument.RUNFARM_RESUMED) == 1

    def test_worker_kill_is_requeued_and_result_correct(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        sentinel = tmp_path / "sentinel"
        sentinel.mkdir()
        sup = _supervisor(tmp_path / "run")
        units = [
            WorkUnit(name="flaky", fn=_flaky_square,
                     args=(7, str(sentinel))),
            WorkUnit(name="healthy", fn=_square, args=(5,)),
        ]
        keys = [cache_key("sup-kill", n) for n in ("flaky", "healthy")]
        results = sup.run_batch(ParallelExecutor(2), units, keys,
                                ResultCache())
        assert results == [49, 25]
        assert sup.units_retried == 1
        assert instrument.value(instrument.RUNFARM_WORKER_LOST) == 1
        state = RunManifest.load(sup.manifest.path)
        assert state.units[keys[0]].status == mf.DONE
        assert state.units[keys[0]].attempt == 2

    def test_poison_pill_quarantined_after_attempts(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        sup = _supervisor(tmp_path)
        units = [
            WorkUnit(name="poison", fn=_raise, args=("always fails",)),
            WorkUnit(name="healthy", fn=_square, args=(4,)),
        ]
        keys = [cache_key("sup-poison", n) for n in ("p", "h")]
        store = ResultCache()
        with pytest.raises(QuarantinedUnitError) as excinfo:
            sup.run_batch(ParallelExecutor(2), units, keys, store)
        err = excinfo.value
        assert err.quarantined_units() == ["poison"]
        assert err.total == 2
        # The healthy batchmate completed and its artifact was stored
        # before the error surfaced — partial progress is preserved.
        found, value = store.get(keys[1])
        assert found and value == 16
        state = RunManifest.load(sup.manifest.path)
        assert state.units[keys[0]].status == mf.QUARANTINED
        assert state.units[keys[1]].status == mf.DONE
        assert instrument.value(instrument.RUNFARM_QUARANTINED) == 1

    def test_timeout_quarantine_under_deadline(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        config = SupervisorConfig(unit_timeout_s=0.15,
                                  retry=_fast_policy(max_attempts=2))
        sup = _supervisor(tmp_path, config=config)
        units = [WorkUnit(name="hang", fn=_hang, args=(30.0,))]
        keys = [cache_key("sup-hang", 1)]
        started = time.monotonic()
        with pytest.raises(QuarantinedUnitError):
            sup.run_batch(ParallelExecutor(1), units, keys, ResultCache())
        # Two attempts at ~0.15s each, not 60s of sleeping.
        assert time.monotonic() - started < 10.0
        assert instrument.value(instrument.RUNFARM_TIMEOUTS) == 2
        state = RunManifest.load(sup.manifest.path)
        assert state.units[keys[0]].status == mf.QUARANTINED

    def test_max_elapsed_deadline_stops_retrying(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        # Deadline so tight that the first failure exhausts the budget
        # even though max_attempts would allow many more tries.
        policy = RetryPolicy(timeout_s=1e-4, max_attempts=50,
                             backoff_factor=1.0, jitter_fraction=0.0,
                             max_elapsed_s=1e-4)
        sup = _supervisor(
            tmp_path, config=SupervisorConfig(retry=policy))
        units = [WorkUnit(name="poison", fn=_raise, args=("nope",))]
        with pytest.raises(QuarantinedUnitError):
            sup.run_batch(ParallelExecutor(1), units,
                          [cache_key("sup-deadline", 1)], ResultCache())
        state = RunManifest.load(sup.manifest.path)
        record = next(iter(state.units.values()))
        assert record.status == mf.QUARANTINED
        assert record.attempt < 50

    def test_unkeyed_units_get_manifest_rows(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        sup = _supervisor(tmp_path)
        units = [WorkUnit(name="anon", fn=_square, args=(6,))]
        results = sup.run_batch(ParallelExecutor(1), units, [None],
                                ResultCache())
        assert results == [36]
        state = RunManifest.load(sup.manifest.path)
        assert "unkeyed:anon" in state.units
        assert state.units["unkeyed:anon"].status == mf.DONE

    def test_length_mismatch_rejected(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        sup = _supervisor(tmp_path)
        with pytest.raises(ValueError):
            sup.run_batch(ParallelExecutor(1),
                          [WorkUnit(name="u", fn=_square, args=(1,))],
                          [], ResultCache())


class TestSupervisedExecutor:
    def _executor(self, tmp_path, jobs=2, **kwargs):
        manifest = RunManifest(str(tmp_path))
        manifest.begin_generation(verb="test", seed=1, samples=1,
                                  requests=1, tier="smoke", jobs=jobs,
                                  code_version="test")
        config = kwargs.pop("config",
                            SupervisorConfig(retry=_fast_policy()))
        return SupervisedExecutor(jobs, manifest=manifest, config=config,
                                  **kwargs)

    def test_map_cached_seam_routes_through_supervisor(self, tmp_path):
        executor = self._executor(tmp_path)
        units = [WorkUnit(name=f"u{i}", fn=_square, args=(i,))
                 for i in range(3)]
        keys = [cache_key("se-keyed", i) for i in range(3)]
        assert map_cached(executor, units, keys) == [0, 1, 4]
        state = RunManifest.load(executor.supervisor.manifest.path)
        assert state.done_keys() == frozenset(keys)

    def test_map_seam_derives_content_keys(self, tmp_path):
        executor = self._executor(tmp_path)
        units = [WorkUnit(name=f"m{i}", fn=_square, args=(i,))
                 for i in range(3)]
        assert executor.map(units) == [0, 1, 4]
        state = RunManifest.load(executor.supervisor.manifest.path)
        # Content-derived keys, not the unkeyed fallback.
        assert len(state.done_keys()) == 3
        assert not any(k.startswith("unkeyed:") for k in state.units)

    def test_map_results_identical_to_plain_executor(self, tmp_path):
        from repro.core.executor import ParallelExecutor

        units = [WorkUnit(name=f"d{i}", fn=_square, args=(i,))
                 for i in range(5)]
        plain = ParallelExecutor(1).map(units)
        supervised = self._executor(tmp_path, jobs=2).map(units)
        assert supervised == plain

    def test_resume_serves_from_store_without_rerun(self, tmp_path):
        run_dir = tmp_path / "run"
        store = ResultCache(cache_dir=str(tmp_path / "artifacts"))
        units = [WorkUnit(name=f"r{i}", fn=_square, args=(i,))
                 for i in range(4)]
        keys = [cache_key("se-resume", i) for i in range(4)]

        first = self._executor(run_dir, store=store)
        assert first.map_keyed(units, keys) == [0, 1, 4, 9]

        prior = load_prior_done(str(run_dir / "manifest.jsonl"))
        assert prior == frozenset(keys)
        second = self._executor(run_dir, store=store, prior_done=prior)
        assert second.map_keyed(units, keys) == [0, 1, 4, 9]
        assert second.supervisor.units_resumed == 4
        assert "4 resumed" in second.summary()

    def test_load_prior_done_missing_file(self, tmp_path):
        assert load_prior_done(str(tmp_path / "nope.jsonl")) == frozenset()


class TestConfigValidation:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            SupervisorConfig(unit_timeout_s=0.0)

    def test_quarantine_error_message_truncates(self):
        failures = [
            UnitFailure(unit=f"u{i}", kind=UnitFailure.ERROR,
                        elapsed_s=0.0)
            for i in range(8)
        ]
        err = QuarantinedUnitError(failures, total=10)
        assert "8/10" in str(err)
        assert "+3 more" in str(err)
