"""`repro status`: fleet progress reconstructed from manifest + beats.

The acceptance criterion from the issue lives here: the unit counts in
``repro status <run-dir> --json`` match the manifest replay
(:meth:`RunManifest.load(...).counts()`) exactly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.core import instrument
from repro.core.cache import ResultCache, configure
from repro.runfarm import manifest as mf
from repro.runfarm.health import write_beat
from repro.runfarm.manifest import RunManifest
from repro.runfarm.status import collect, render, to_json


@pytest.fixture(autouse=True)
def _fresh_state():
    configure(ResultCache())
    instrument.reset()
    yield
    configure(ResultCache())
    instrument.reset()


def _seed_manifest(run_dir: str) -> RunManifest:
    """A synthetic run: 2 done, 1 cached, 1 retried-then-done, 1 running,
    1 quarantined."""
    manifest = RunManifest(run_dir)
    manifest.begin_generation(verb="fig4", seed=7, samples=20, requests=600,
                              tier="smoke", jobs=2, code_version="t")
    manifest.record_unit("k1", "fig4:a", mf.RUNNING, attempt=1)
    manifest.record_unit("k1", "fig4:a", mf.DONE, attempt=1,
                         wall_s=0.5, cpu_s=0.4, events_per_s=1000.0)
    manifest.record_unit("k2", "fig4:b", mf.RUNNING, attempt=1)
    manifest.record_unit("k2", "fig4:b", mf.DONE, attempt=1, wall_s=2.0)
    manifest.record_unit("k3", "fig4:c", mf.CACHED)
    manifest.record_unit("k4", "fig4:d", mf.RUNNING, attempt=1)
    manifest.record_unit("k4", "fig4:d", mf.TIMEOUT, attempt=1,
                         elapsed_s=1.0, error="deadline")
    manifest.record_unit("k4", "fig4:d", mf.RUNNING, attempt=2)
    manifest.record_unit("k4", "fig4:d", mf.DONE, attempt=2, wall_s=0.9)
    manifest.record_unit("k5", "fig4:e", mf.RUNNING, attempt=1)
    manifest.record_unit("k6", "fig4:f", mf.QUARANTINED, attempt=3,
                         error="attempts exhausted: boom")
    return manifest


class TestCollect:
    def test_counts_match_manifest_replay_exactly(self, tmp_path):
        manifest = _seed_manifest(str(tmp_path))
        status = collect(str(tmp_path))
        assert status.counts() == RunManifest.load(manifest.path).counts()
        assert status.counts() == {"done": 3, "cached": 1, "running": 1,
                                   "quarantined": 1}
        assert status.total == 6
        assert status.complete == 4
        assert status.incomplete == 2

    def test_attempt_histories_replayed(self, tmp_path):
        _seed_manifest(str(tmp_path))
        status = collect(str(tmp_path))
        retried = status.retried_units()
        assert [h.unit for h in retried] == ["fig4:d"]
        assert retried[0].attempts == [
            (1, mf.RUNNING), (1, mf.TIMEOUT), (2, mf.RUNNING), (2, mf.DONE)]

    def test_eta_from_wall_time_ewma_and_jobs(self, tmp_path):
        _seed_manifest(str(tmp_path))
        status = collect(str(tmp_path))
        assert status.ewma_unit_s is not None and status.ewma_unit_s > 0
        # 2 incomplete units over jobs=2 workers.
        assert status.eta_s() == pytest.approx(
            2 * status.ewma_unit_s / 2)

    def test_eta_is_none_when_complete(self, tmp_path):
        manifest = RunManifest(str(tmp_path))
        manifest.begin_generation(verb="fig7", seed=1, samples=1, requests=1,
                                  tier="smoke", jobs=1, code_version="t")
        manifest.record_unit("k1", "u1", mf.DONE, attempt=1, wall_s=0.1)
        assert collect(str(tmp_path)).eta_s() is None

    def test_slowest_ranked_by_wall_time(self, tmp_path):
        _seed_manifest(str(tmp_path))
        slowest = collect(str(tmp_path)).slowest()
        assert [r.unit for r in slowest] == ["fig4:b", "fig4:d", "fig4:a"]

    def test_heartbeats_attach_to_running_units(self, tmp_path):
        _seed_manifest(str(tmp_path))
        write_beat(str(tmp_path / "heartbeats"), "fig4:e", seq=1,
                   interval_s=0.25)
        status = collect(str(tmp_path))
        assert "fig4:e" in status.beats
        doc = to_json(status)
        (running,) = doc["running"]
        assert running["unit"] == "fig4:e"
        assert running["heartbeat_age_s"] is not None
        assert running["heartbeat_stale"] is False


class TestJsonDocument:
    def test_document_shape(self, tmp_path):
        _seed_manifest(str(tmp_path))
        doc = to_json(collect(str(tmp_path)))
        assert doc["verb"] == "fig4"
        assert doc["generation"] == 1
        assert doc["counts"] == {"done": 3, "cached": 1, "running": 1,
                                 "quarantined": 1}
        assert doc["quarantined"] == ["fig4:f"]
        assert doc["retried"][0]["unit"] == "fig4:d"
        assert doc["skipped_lines"] == 0
        json.dumps(doc)  # must be JSON-serializable as-is


class TestRender:
    def test_text_view_mentions_everything(self, tmp_path):
        _seed_manifest(str(tmp_path))
        text = render(collect(str(tmp_path)))
        assert "verb 'fig4'" in text
        assert "4/6 units complete" in text
        assert "running:" in text and "fig4:e" in text
        assert "retried:" in text and "fig4:d" in text
        assert "quarantined:" in text and "fig4:f" in text
        assert "slowest completed units:" in text


class TestStatusVerb:
    def test_json_counts_match_manifest(self, tmp_path, capsys):
        manifest = _seed_manifest(str(tmp_path))
        assert main(["status", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == RunManifest.load(manifest.path).counts()

    def test_text_output(self, tmp_path, capsys):
        _seed_manifest(str(tmp_path))
        assert main(["status", str(tmp_path)]) == 0
        assert "4/6 units complete" in capsys.readouterr().out

    def test_missing_manifest_is_error_exit_2(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nope")]) == 2
        assert "no manifest" in capsys.readouterr().err

    def test_manifest_file_path_also_accepted(self, tmp_path, capsys):
        manifest = _seed_manifest(str(tmp_path))
        assert main(["status", manifest.path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 6


class TestProfilesEndToEnd:
    def test_supervised_smoke_run_journals_profiles(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        code = main(["--samples", "20", "--requests", "600", "--jobs", "2",
                     "fig4", "--smoke", "--run-dir", run_dir])
        assert code == 0
        capsys.readouterr()
        state = RunManifest.load(os.path.join(run_dir, "manifest.jsonl"))
        done = [r for r in state.units.values() if r.status == mf.DONE]
        assert done, "supervised run journaled no done units"
        assert all(r.wall_s is not None and r.wall_s >= 0 for r in done)
        assert all(r.cpu_s is not None for r in done)
        assert main(["status", run_dir, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == state.counts()
        assert doc["slowest"], "no slowest-units profile in status"
