"""Worker heartbeats: beat files, staleness, and the parent-side scan."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import instrument
from repro.runfarm import health
from repro.runfarm.health import (
    HealthMonitor,
    WorkerBeat,
    clear_beat,
    start_heartbeat,
    write_beat,
)


@pytest.fixture(autouse=True)
def _fresh_counters():
    instrument.reset()
    yield
    instrument.reset()


class TestBeatFiles:
    def test_write_and_scan_round_trip(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=3, interval_s=0.1)
        monitor = HealthMonitor(str(tmp_path))
        beats = monitor.scan()
        assert set(beats) == {"unit-a"}
        beat = beats["unit-a"]
        assert beat.pid == os.getpid()
        assert beat.seq == 3
        assert beat.alive
        assert not beat.stale

    def test_clear_beat_removes_file(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=0)
        clear_beat(str(tmp_path))
        assert HealthMonitor(str(tmp_path)).scan() == {}

    def test_no_tmp_litter(self, tmp_path):
        for seq in range(5):
            write_beat(str(tmp_path), "unit-a", seq=seq)
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_missing_dir_scans_empty(self, tmp_path):
        monitor = HealthMonitor(str(tmp_path / "nope"))
        assert monitor.scan() == {}


class TestStaleness:
    def test_fresh_beat_is_not_stale(self):
        beat = WorkerBeat(pid=1, unit="u", seq=0, age_s=0.1,
                          interval_s=0.25, alive=True)
        assert not beat.stale

    def test_old_beat_is_stale(self):
        age = health.STALE_INTERVALS * 0.25 + 0.01
        beat = WorkerBeat(pid=1, unit="u", seq=0, age_s=age,
                          interval_s=0.25, alive=True)
        assert beat.stale

    def test_scan_reports_age_from_timestamp(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=0, interval_s=0.1)
        monitor = HealthMonitor(str(tmp_path))
        # Pretend two seconds elapsed since the beat was written.
        beats = monitor.scan(now=time.time() + 2.0)
        assert beats["unit-a"].age_s >= 2.0
        assert beats["unit-a"].stale


class TestStalenessBoundary:
    """The stale classification flips strictly ABOVE the threshold."""

    def test_exactly_at_threshold_is_not_stale(self):
        interval = 0.25
        beat = WorkerBeat(pid=1, unit="u", seq=0,
                          age_s=health.STALE_INTERVALS * interval,
                          interval_s=interval, alive=True)
        assert not beat.stale  # strict >: the boundary itself is healthy

    def test_just_above_threshold_is_stale(self):
        interval = 0.25
        beat = WorkerBeat(pid=1, unit="u", seq=0,
                          age_s=health.STALE_INTERVALS * interval * 1.01,
                          interval_s=interval, alive=True)
        assert beat.stale

    def test_threshold_scales_with_interval(self):
        # A 1.1s-old beat is stale for interval 0.25 (threshold 1.0s)
        # but healthy for interval 0.5 (threshold 2.0s).
        fast = WorkerBeat(pid=1, unit="u", seq=0, age_s=1.1,
                          interval_s=0.25, alive=True)
        slow = WorkerBeat(pid=1, unit="u", seq=0, age_s=1.1,
                          interval_s=0.5, alive=True)
        assert fast.stale and not slow.stale


class TestSlowVersusHung:
    """The executor's classification: stale heartbeat = hung, healthy
    heartbeat but way past the runtime estimate = slow."""

    def _executor_with_estimate(self, seconds_per_unit):
        from repro.core.executor import ParallelExecutor

        executor = ParallelExecutor(1)
        executor._seconds_per_unit = seconds_per_unit
        return executor

    def _running_state(self, unit_name, started_ago):
        import types

        from repro.core.executor import _Running, WorkUnit

        return _Running(
            index=0,
            unit=WorkUnit(name=unit_name, fn=lambda: None),
            attempt=1,
            proc=types.SimpleNamespace(pid=12345),
            started=time.perf_counter() - started_ago,
        )

    class _StubMonitor:
        def __init__(self, beats):
            self._beats = beats

        def scan(self):
            return self._beats

    def test_stale_heartbeat_is_hung(self):
        executor = self._executor_with_estimate(0.1)
        state = self._running_state("u", started_ago=2.0)
        beats = {"u": WorkerBeat(pid=12345, unit="u", seq=5, age_s=9.0,
                                 interval_s=0.25, alive=True)}
        executor._check_health(self._StubMonitor(beats), {"c": state}, None)
        assert instrument.value(instrument.RUNFARM_WORKERS_HUNG) == 1
        assert instrument.value(instrument.RUNFARM_WORKERS_SLOW) == 0
        assert state.reported_slow  # reported once, not every scan

    def test_healthy_heartbeat_past_estimate_is_slow(self):
        executor = self._executor_with_estimate(0.1)
        state = self._running_state("u", started_ago=2.0)
        beats = {"u": WorkerBeat(pid=12345, unit="u", seq=5, age_s=0.1,
                                 interval_s=0.25, alive=True)}
        executor._check_health(self._StubMonitor(beats), {"c": state}, None)
        assert instrument.value(instrument.RUNFARM_WORKERS_SLOW) == 1
        assert instrument.value(instrument.RUNFARM_WORKERS_HUNG) == 0

    def test_on_schedule_unit_is_neither(self):
        executor = self._executor_with_estimate(10.0)
        state = self._running_state("u", started_ago=0.5)
        beats = {"u": WorkerBeat(pid=12345, unit="u", seq=5, age_s=0.1,
                                 interval_s=0.25, alive=True)}
        executor._check_health(self._StubMonitor(beats), {"c": state}, None)
        assert instrument.value(instrument.RUNFARM_WORKERS_SLOW) == 0
        assert instrument.value(instrument.RUNFARM_WORKERS_HUNG) == 0

    def test_reported_only_once_per_unit(self):
        executor = self._executor_with_estimate(0.1)
        state = self._running_state("u", started_ago=2.0)
        beats = {"u": WorkerBeat(pid=12345, unit="u", seq=5, age_s=0.1,
                                 interval_s=0.25, alive=True)}
        monitor = self._StubMonitor(beats)
        executor._check_health(monitor, {"c": state}, None)
        executor._check_health(monitor, {"c": state}, None)
        assert instrument.value(instrument.RUNFARM_WORKERS_SLOW) == 1


class TestPidReuse:
    """A recycled pid must read as a corpse, not a healthy worker."""

    def test_beat_records_process_start_id(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=0)
        payload = json.loads((tmp_path / f"{os.getpid()}.json").read_text())
        assert payload["proc_start"] == health._proc_start_id(os.getpid())
        assert payload["proc_start"] is not None  # Linux CI has /proc

    def test_mismatched_start_id_is_swept_as_corpse(self, tmp_path):
        # Forge a beat whose pid is alive (ours) but whose recorded
        # incarnation is a different process: exactly what pid reuse
        # looks like after the original worker died.
        write_beat(str(tmp_path), "unit-a", seq=0)
        path = tmp_path / f"{os.getpid()}.json"
        payload = json.loads(path.read_text())
        payload["proc_start"] = "999999999"  # not our starttime
        path.write_text(json.dumps(payload))
        monitor = HealthMonitor(str(tmp_path))
        beats = monitor.scan()
        assert not beats["unit-a"].alive
        assert monitor.scan() == {}  # the corpse file was unlinked

    def test_matching_start_id_stays_alive(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=0)
        beats = HealthMonitor(str(tmp_path)).scan()
        assert beats["unit-a"].alive

    def test_missing_proc_start_falls_back_to_pid_liveness(self, tmp_path):
        # Old-format beats (no proc_start) keep the pre-fix behavior.
        write_beat(str(tmp_path), "unit-a", seq=0)
        path = tmp_path / f"{os.getpid()}.json"
        payload = json.loads(path.read_text())
        del payload["proc_start"]
        path.write_text(json.dumps(payload))
        beats = HealthMonitor(str(tmp_path)).scan()
        assert beats["unit-a"].alive

    def test_proc_start_id_none_for_dead_pid(self):
        assert health._proc_start_id(2**31 - 1) is None


class TestDeadWorkerSweep:
    def test_dead_pid_file_is_swept(self, tmp_path):
        # A pid that cannot exist: max pid is bounded well below 2**31.
        dead_pid = 2**31 - 1
        write_beat(str(tmp_path), "corpse", seq=0, pid=dead_pid)
        monitor = HealthMonitor(str(tmp_path))
        beats = monitor.scan()
        assert not beats["corpse"].alive
        # The corpse's file was unlinked; the next scan is clean.
        assert monitor.scan() == {}

    def test_torn_file_is_skipped(self, tmp_path):
        path = tmp_path / f"{os.getpid()}.json"
        path.write_text('{"pid": ')
        assert HealthMonitor(str(tmp_path)).scan() == {}


class TestHeartbeatThread:
    def test_start_stop_lifecycle(self, tmp_path):
        stop = start_heartbeat(str(tmp_path), "unit-a", interval_s=0.02)
        # The first beat is synchronous.
        monitor = HealthMonitor(str(tmp_path))
        assert "unit-a" in monitor.scan()
        time.sleep(0.08)
        beats = monitor.scan()
        assert beats["unit-a"].seq >= 1  # the thread re-beat
        stop()
        assert monitor.scan() == {}  # clean exit removes the file

    def test_beats_counted(self, tmp_path):
        stop = start_heartbeat(str(tmp_path), "unit-a", interval_s=0.02)
        try:
            time.sleep(0.08)
            monitor = HealthMonitor(str(tmp_path))
            monitor.scan()
            assert monitor.total_beats >= 1
            assert instrument.value(instrument.RUNFARM_HEARTBEATS) >= 1
        finally:
            stop()

    def test_beat_payload_shape(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=2, interval_s=0.5)
        path = tmp_path / f"{os.getpid()}.json"
        payload = json.loads(path.read_text())
        assert payload["unit"] == "unit-a"
        assert payload["seq"] == 2
        assert payload["interval_s"] == 0.5
        assert "ts_unix" in payload
