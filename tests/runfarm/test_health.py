"""Worker heartbeats: beat files, staleness, and the parent-side scan."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import instrument
from repro.runfarm import health
from repro.runfarm.health import (
    HealthMonitor,
    WorkerBeat,
    clear_beat,
    start_heartbeat,
    write_beat,
)


@pytest.fixture(autouse=True)
def _fresh_counters():
    instrument.reset()
    yield
    instrument.reset()


class TestBeatFiles:
    def test_write_and_scan_round_trip(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=3, interval_s=0.1)
        monitor = HealthMonitor(str(tmp_path))
        beats = monitor.scan()
        assert set(beats) == {"unit-a"}
        beat = beats["unit-a"]
        assert beat.pid == os.getpid()
        assert beat.seq == 3
        assert beat.alive
        assert not beat.stale

    def test_clear_beat_removes_file(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=0)
        clear_beat(str(tmp_path))
        assert HealthMonitor(str(tmp_path)).scan() == {}

    def test_no_tmp_litter(self, tmp_path):
        for seq in range(5):
            write_beat(str(tmp_path), "unit-a", seq=seq)
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_missing_dir_scans_empty(self, tmp_path):
        monitor = HealthMonitor(str(tmp_path / "nope"))
        assert monitor.scan() == {}


class TestStaleness:
    def test_fresh_beat_is_not_stale(self):
        beat = WorkerBeat(pid=1, unit="u", seq=0, age_s=0.1,
                          interval_s=0.25, alive=True)
        assert not beat.stale

    def test_old_beat_is_stale(self):
        age = health.STALE_INTERVALS * 0.25 + 0.01
        beat = WorkerBeat(pid=1, unit="u", seq=0, age_s=age,
                          interval_s=0.25, alive=True)
        assert beat.stale

    def test_scan_reports_age_from_timestamp(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=0, interval_s=0.1)
        monitor = HealthMonitor(str(tmp_path))
        # Pretend two seconds elapsed since the beat was written.
        beats = monitor.scan(now=time.time() + 2.0)
        assert beats["unit-a"].age_s >= 2.0
        assert beats["unit-a"].stale


class TestDeadWorkerSweep:
    def test_dead_pid_file_is_swept(self, tmp_path):
        # A pid that cannot exist: max pid is bounded well below 2**31.
        dead_pid = 2**31 - 1
        write_beat(str(tmp_path), "corpse", seq=0, pid=dead_pid)
        monitor = HealthMonitor(str(tmp_path))
        beats = monitor.scan()
        assert not beats["corpse"].alive
        # The corpse's file was unlinked; the next scan is clean.
        assert monitor.scan() == {}

    def test_torn_file_is_skipped(self, tmp_path):
        path = tmp_path / f"{os.getpid()}.json"
        path.write_text('{"pid": ')
        assert HealthMonitor(str(tmp_path)).scan() == {}


class TestHeartbeatThread:
    def test_start_stop_lifecycle(self, tmp_path):
        stop = start_heartbeat(str(tmp_path), "unit-a", interval_s=0.02)
        # The first beat is synchronous.
        monitor = HealthMonitor(str(tmp_path))
        assert "unit-a" in monitor.scan()
        time.sleep(0.08)
        beats = monitor.scan()
        assert beats["unit-a"].seq >= 1  # the thread re-beat
        stop()
        assert monitor.scan() == {}  # clean exit removes the file

    def test_beats_counted(self, tmp_path):
        stop = start_heartbeat(str(tmp_path), "unit-a", interval_s=0.02)
        try:
            time.sleep(0.08)
            monitor = HealthMonitor(str(tmp_path))
            monitor.scan()
            assert monitor.total_beats >= 1
            assert instrument.value(instrument.RUNFARM_HEARTBEATS) >= 1
        finally:
            stop()

    def test_beat_payload_shape(self, tmp_path):
        write_beat(str(tmp_path), "unit-a", seq=2, interval_s=0.5)
        path = tmp_path / f"{os.getpid()}.json"
        payload = json.loads(path.read_text())
        assert payload["unit"] == "unit-a"
        assert payload["seq"] == 2
        assert payload["interval_s"] == 0.5
        assert "ts_unix" in payload
