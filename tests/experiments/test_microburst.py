"""Tests for the microburst tolerance study."""

import numpy as np
import pytest

from repro.core.rng import RandomStreams
from repro.experiments.measurement import ACCEL_PLATFORM
from repro.experiments.microburst import (
    _burst_arrivals,
    format_microburst,
    run_microburst_study,
)


class TestBurstArrivals:
    def test_mean_rate_preserved(self):
        rng = np.random.default_rng(0)
        arrivals = _burst_arrivals(1e6, 4.0, 20_000, rng)
        measured = len(arrivals) / arrivals[-1]
        assert measured == pytest.approx(1e6, rel=0.1)

    def test_burstiness_increases_variance(self):
        rng = np.random.default_rng(1)
        smooth = np.diff(_burst_arrivals(1e6, 1.0, 10_000, np.random.default_rng(1)))
        bursty = np.diff(_burst_arrivals(1e6, 8.0, 10_000, np.random.default_rng(1)))
        assert bursty.std() > 1.5 * smooth.std()

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            _burst_arrivals(1e6, 0.5, 10, np.random.default_rng(0))


class TestMicroburstStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return run_microburst_study(
            peak_to_mean_ratios=(1.0, 4.0, 8.0),
            samples=80, n_requests=8000, streams=RandomStreams(3),
        )

    def test_host_p99_grows_with_burstiness(self, results):
        p99s = [p.p99_latency_s for p in results["host"]]
        assert p99s[-1] > 2 * p99s[0]

    def test_host_loses_packets_under_heavy_bursts(self, results):
        """Bounded kernel/ring buffers turn 8x bursts into loss — the
        reserved-core / provisioning problem of Key Observation 3."""
        assert results["host"][-1].loss_fraction > 0.05
        assert results["host"][0].loss_fraction < 0.01

    def test_accelerator_absorbs_bursts_without_loss(self, results):
        """The engine's deep job queue rides the burst out in latency."""
        for point in results[ACCEL_PLATFORM]:
            assert point.loss_fraction == 0.0

    def test_accelerator_latency_headroom(self, results):
        """Its p99 grows far more gently than the host's loss knee."""
        accel = [p.p99_latency_s for p in results[ACCEL_PLATFORM]]
        assert accel[-1] < 6 * accel[0]

    def test_formatting(self, results):
        text = format_microburst(results)
        assert "peak/mean" in text
