"""Tests for the Fig. 7 trace experiment."""

import pytest

from repro.experiments import format_fig7, run_fig7


class TestFig7:
    def test_average_matches_table4_anchor(self):
        result = run_fig7(duration_s=1800.0)
        assert result.stats["average_gbps"] == pytest.approx(0.76, rel=0.01)

    def test_bursty_structure(self):
        """Fig. 7 shows low average with pronounced bursts."""
        result = run_fig7(duration_s=3600.0)
        assert result.stats["peak_gbps"] > 5 * result.stats["average_gbps"]
        assert result.stats["p99_gbps"] > 2 * result.stats["p50_gbps"]

    def test_series_length(self):
        result = run_fig7(duration_s=600.0)
        assert len(result.series()) == 600

    def test_rates_well_below_line_rate(self):
        """§5.1: datacenter trace rates are far below 100 Gb/s."""
        result = run_fig7(duration_s=3600.0)
        assert result.stats["peak_gbps"] < 40.0

    def test_format_renders(self):
        result = run_fig7(duration_s=600.0)
        text = format_fig7(result)
        assert "avg 0.76" in text
        assert "#" in text
