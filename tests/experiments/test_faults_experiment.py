"""Tests for the availability-under-faults experiment."""

import numpy as np
import pytest

from repro.core.rng import RandomStreams
from repro.experiments.faults import (
    ALL_SCENARIOS,
    FaultStudyResult,
    format_faults,
    run_faults_study,
    scenario_specs,
)
from repro.experiments.fig4 import snic_platform_for
from repro.experiments.measurement import measure_operating_point
from repro.experiments.profiles import get_profile

SAMPLES = 40
REQUESTS = 2_000
PACKETS = 8_000


@pytest.fixture(scope="module")
def study() -> FaultStudyResult:
    return run_faults_study(
        functions=("redis:a", "compression:app"),
        samples=SAMPLES,
        n_requests=REQUESTS,
        n_packets=PACKETS,
        streams=RandomStreams(2023),
    )


class TestScenarioSpecs:
    def test_all_scenarios_materialize(self):
        for name in ALL_SCENARIOS:
            specs = scenario_specs(name, horizon_s=1.0)
            assert specs and specs[0].name == name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            scenario_specs("meteor-strike", 1.0)


class TestStudy:
    def test_every_function_runs_every_scenario(self, study):
        for report in study.reports:
            names = [s.scenario for s in report.scenarios]
            assert names == ["no-fault", *ALL_SCENARIOS]

    def test_deterministic_across_runs(self, study):
        again = run_faults_study(
            functions=("redis:a", "compression:app"),
            samples=SAMPLES,
            n_requests=REQUESTS,
            n_packets=PACKETS,
            streams=RandomStreams(2023),
        )
        for first, second in zip(study.reports, again.reports):
            for a, b in zip(first.scenarios, second.scenarios):
                assert a.availability == b.availability
                assert a.p99_s == b.p99_s
                assert a.p999_s == b.p999_s
                assert a.dropped == b.dropped
                assert a.recovery_s == b.recovery_s or (
                    np.isnan(a.recovery_s) and np.isnan(b.recovery_s)
                )

    def test_baseline_reproduces_fig4_operating_point(self, study):
        """The no-fault baseline must be the existing Fig. 4 measurement,
        bit-identical: same streams, same procedure."""
        streams = RandomStreams(2023)
        for report in study.reports:
            profile = get_profile(report.function, samples=SAMPLES)
            host = measure_operating_point(profile, "host", streams, REQUESTS)
            snic = measure_operating_point(
                profile, snic_platform_for(profile), streams, REQUESTS
            )
            assert report.host.capacity_rps == host.capacity_rps
            assert report.snic.capacity_rps == snic.capacity_rps
            assert report.host.metrics.latency_p99 == host.metrics.latency_p99
            assert report.snic.metrics.latency_p99 == snic.metrics.latency_p99

    def test_no_fault_baseline_is_clean(self, study):
        for report in study.reports:
            base = report.scenarios[0]
            assert base.scenario == "no-fault"
            assert base.dropped == 0
            assert base.availability == 1.0
            assert base.host_share_fault == 0.0

    def test_outage_triggers_snic_to_host_failover(self, study):
        """Acceptance: host share rises during the outage, drops stay
        bounded (confined to the fault window), and the path fails back."""
        for report in study.reports:
            outage = next(s for s in report.scenarios
                          if s.scenario == "snic-outage")
            assert outage.host_share_fault > 0.90
            assert outage.host_share_steady < 0.10
            assert outage.drops_outside_fault_s == 0
            assert np.isfinite(outage.recovery_s)
            assert outage.recovery_s >= 0.0

    def test_throttle_inflates_p99_but_keeps_serving(self, study):
        for report in study.reports:
            throttle = next(s for s in report.scenarios
                            if s.scenario == "thermal-throttle")
            base = report.scenarios[0]
            assert throttle.p99_s > base.p99_s
            assert throttle.availability > 0.95

    def test_link_loss_healed_by_retries(self, study):
        for report in study.reports:
            link = next(s for s in report.scenarios
                        if s.scenario == "link-burst-loss")
            # Most packets survive via retries; the rest exhaust attempts.
            assert link.availability > 0.90
            assert link.dropped > 0
            assert link.p999_s >= link.p99_s

    def test_smoke_mode_shrinks_study(self):
        result = run_faults_study(streams=RandomStreams(1), smoke=True)
        assert {r.function for r in result.reports} == {"redis:a", "ovs:10"}

    def test_format_renders_all_cells(self, study):
        text = format_faults(study)
        for report in study.reports:
            assert report.function in text
        for scenario in ("no-fault", *ALL_SCENARIOS):
            assert scenario in text
        assert "avail" in text and "recover ms" in text
