"""Tests for the operation-mode study and the future-SNIC sensitivity
study."""

import pytest

from repro.core.rng import RandomStreams
from repro.experiments.modes import format_mode_study, run_mode_study
from repro.experiments.sensitivity import (
    DESIGNS,
    SnicDesign,
    format_sensitivity,
    rows_by_design,
    run_sensitivity,
)


class TestModeStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return run_mode_study(n_packets=300, interval_s=20e-6)

    def test_both_modes_measured(self, results):
        assert set(results) == {"on-path", "off-path"}

    def test_on_path_pays_latency_tax(self, results):
        """§2.3: on-path host-bound traffic crosses the SNIC CPU complex."""
        assert results["on-path"].mean_rtt_s > results["off-path"].mean_rtt_s

    def test_off_path_bypasses_snic_cpu(self, results):
        assert results["off-path"].snic_cpu_packets == 0
        assert results["on-path"].snic_cpu_packets == 300

    def test_tax_magnitude_is_microseconds(self, results):
        tax = results["on-path"].mean_rtt_s - results["off-path"].mean_rtt_s
        assert 0.5e-6 < tax < 10e-6

    def test_formatting(self, results):
        text = format_mode_study(results)
        assert "on-path tax" in text


class TestSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_sensitivity(
            keys=("mica:32", "redis:a", "rem:file_executable"),
            samples=100,
            n_requests=6000,
            streams=RandomStreams(6),
        )

    def test_design_validation(self):
        with pytest.raises(ValueError):
            SnicDesign("bad", core_count_scale=0)

    def test_baseline_matches_fig4(self, rows):
        by_design = rows_by_design(rows)
        assert by_design["bluefield-2"]["mica:32"] < 0.6
        assert by_design["bluefield-2"]["redis:a"] < 0.25

    def test_next_gen_flips_compute_bound_functions(self, rows):
        """The paper's KO4 speculation: a stronger SNIC CPU overtakes the
        host for certain configurations (MICA) ..."""
        by_design = rows_by_design(rows)
        assert by_design["next-gen"]["mica:32"] > 1.0

    def test_next_gen_does_not_fix_kernel_stack(self, rows):
        """... but kernel-stack functions stay behind without Strategy 1."""
        by_design = rows_by_design(rows)
        assert by_design["next-gen"]["redis:a"] < 0.6

    def test_engine_upgrade_helps_only_accelerated_functions(self, rows):
        by_design = rows_by_design(rows)
        assert by_design["line-rate-engines"]["rem:file_executable"] > 1.4 * (
            by_design["bluefield-2"]["rem:file_executable"]
        )
        assert by_design["line-rate-engines"]["redis:a"] == pytest.approx(
            by_design["bluefield-2"]["redis:a"], rel=0.3
        )

    def test_calibration_restored(self, rows):
        from repro import calibration

        assert calibration.PLATFORMS["snic-cpu"] is calibration.SNIC_CPU
        assert calibration.ACCELERATORS["rem"].bytes_per_s["default"] == 7.2e9

    def test_formatting(self, rows):
        text = format_sensitivity(rows)
        assert "flips" in text or "SNIC/host" in text
