"""Tests for the function-profile catalog."""

import pytest

from repro.experiments.profiles import ALL_PROFILE_KEYS, get_profile


class TestRegistry:
    def test_all_13_functions_covered(self):
        """Table 3 lists 10 benchmarks + 3 microbenchmarks; every one has
        at least one profile config."""
        families = {key.split(":")[0] for key in ALL_PROFILE_KEYS}
        assert families == {
            "udp", "dpdk", "rdma",  # microbenchmarks
            "redis", "snort", "nat", "bm25",  # TCP/UDP
            "mica", "fio",  # RDMA
            "crypto", "rem", "compression", "ovs",  # DPDK / accelerated
        }

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_profile("nginx:tls")

    def test_caching(self):
        assert get_profile("udp:64", samples=10) is get_profile("udp:64", samples=10)

    @pytest.mark.parametrize("key", sorted(ALL_PROFILE_KEYS))
    def test_profile_wellformed(self, key):
        profile = get_profile(key, samples=30)
        assert profile.key == key
        assert profile.wire_bytes > 0
        assert profile.payload_bytes > 0
        assert profile.work_samples
        assert profile.platforms
        assert profile.category in ("micro", "software", "hardware")
        if profile.accel_engine is not None:
            assert "snic-accel" in profile.platforms
        if profile.stack is not None:
            assert profile.stack in ("udp", "tcp", "dpdk", "rdma")


class TestExecutionPlatforms:
    """Table 3's execution-platform matrix (HC / SC / SA columns)."""

    def test_accelerated_functions(self):
        for key in ("crypto:aes", "rem:file_image", "compression:app"):
            assert "snic-accel" in get_profile(key, samples=30).platforms

    def test_software_only_functions(self):
        for key in ("redis:a", "nat:10k", "mica:4", "fio:read", "ovs:10"):
            profile = get_profile(key, samples=30)
            assert "snic-accel" not in profile.platforms
            assert {"host", "snic-cpu"} <= set(profile.platforms)

    def test_crypto_runs_on_all_three(self):
        profile = get_profile("crypto:sha1", samples=30)
        assert set(profile.platforms) == {"host", "snic-cpu", "snic-accel"}


class TestProfileContent:
    def test_redis_workloads_differ_in_mix(self):
        a = get_profile("redis:a", samples=200)
        c = get_profile("redis:c", samples=200)
        # A = 50 % updates (SETs move 1 KB in); C = 100 % reads
        a_sets = sum(1 for w in a.work_samples if w.get("kv_value_byte") > 0)
        assert a_sets  # both GET-hits and SETs move value bytes
        assert a.notes != "" and c.notes != ""

    def test_snort_image_is_heaviest(self):
        image = get_profile("snort:file_image", samples=100).mean_work()
        exe = get_profile("snort:file_executable", samples=100).mean_work()
        assert image.get("dfa_deep_byte") > 20 * exe.get("dfa_deep_byte")

    def test_nat_table_size_changes_kind(self):
        small = get_profile("nat:10k", samples=50).mean_work()
        large = get_profile("nat:1m", samples=50).mean_work()
        assert small.get("nat_lookup") > 0 and small.get("nat_lookup_cold") == 0
        assert large.get("nat_lookup_cold") > 0 and large.get("nat_lookup") == 0

    def test_bm25_1k_walks_more_postings(self):
        small = get_profile("bm25:100", samples=60).mean_work()
        large = get_profile("bm25:1k", samples=60).mean_work()
        assert large.get("bm25_posting") > 3 * small.get("bm25_posting")

    def test_mica_batch_scales_work(self):
        b4 = get_profile("mica:4", samples=60).mean_work()
        b32 = get_profile("mica:32", samples=60).mean_work()
        assert b32.get("hash_probe") > 5 * b4.get("hash_probe")
        # batch-32 working set is priced cache-cold
        assert b32.get("kv_value_byte_cold") > 0
        assert b4.get("kv_value_byte_cold") == 0

    def test_rem_pcap_vs_mtu_density(self):
        pcap = get_profile("rem:file_image", samples=80)
        mtu = get_profile("rem:file_image@mtu", samples=80)
        pcap_density = pcap.mean_work().get("dfa_deep_byte") / pcap.payload_bytes
        mtu_density = mtu.mean_work().get("dfa_deep_byte") / mtu.payload_bytes
        assert pcap_density > 1.4 * mtu_density

    def test_compression_work_from_real_deflate(self):
        profile = get_profile("compression:txt", samples=8)
        work = profile.mean_work()
        assert work.get("lz_byte") == pytest.approx(4096)
        assert work.get("lz_match_search") > 0
        assert work.get("huffman_symbol") > 0

    def test_ovs_mostly_hardware_forwarded(self):
        profile = get_profile("ovs:100", samples=400)
        upcalls = sum(1 for w in profile.work_samples if w.get("flow_upcall") > 0)
        assert upcalls / len(profile.work_samples) < 0.05

    def test_fio_read_write_latency_asymmetry(self):
        read = get_profile("fio:read", samples=60)
        write = get_profile("fio:write", samples=60)
        assert read.latency_extra["snic-cpu"] > read.latency_extra["host"]
        assert write.latency_extra["snic-cpu"] < write.latency_extra["host"]

    def test_crypto_rsa_is_op_based(self):
        profile = get_profile("crypto:rsa", samples=10)
        assert profile.accel_op_based
        assert profile.mean_work().get("rsa_limb_mul") > 1e5
