"""Anchor tests for Table 4 (trace replay) and Table 5 (TCO)."""

import pytest

from repro.core.rng import RandomStreams
from repro.experiments import format_table4, run_table4, run_table5


@pytest.fixture(scope="module")
def table4():
    return run_table4(samples=120, n_requests=6000, streams=RandomStreams(3))


@pytest.fixture(scope="module")
def table5():
    return run_table5(samples=120, n_requests=6000, streams=RandomStreams(3))


class TestTable4:
    def test_throughputs_match_trace_average(self, table4):
        """Table 4: both platforms sustain the 0.76 Gb/s trace."""
        assert table4.host.throughput_gbps == pytest.approx(0.76, rel=0.15)
        assert table4.snic.throughput_gbps == pytest.approx(
            table4.host.throughput_gbps, rel=0.05
        )

    def test_host_p99_near_5us(self, table4):
        """Table 4: host p99 5.07 us."""
        assert 4.0 <= table4.host.p99_latency_us <= 8.0

    def test_snic_p99_about_3x_host(self, table4):
        """Table 4: SNIC p99 17.43 us (~3.4x the host's)."""
        assert 14.0 <= table4.snic.p99_latency_us <= 28.0
        assert table4.snic.p99_latency_us > 2.5 * table4.host.p99_latency_us

    def test_power_anchors(self, table4):
        """Table 4: 278.3 W host-processing vs 254.5 W SNIC-processing."""
        assert table4.host.average_power_w == pytest.approx(278.3, abs=6.0)
        assert table4.snic.average_power_w == pytest.approx(254.5, abs=3.0)

    def test_power_saving_is_modest(self, table4):
        """§5.1: even with relaxed latency, the saving is only ~9 %."""
        saving = 1 - table4.snic.average_power_w / table4.host.average_power_w
        assert 0.03 <= saving <= 0.15

    def test_formatting(self, table4):
        text = format_table4(table4)
        assert "Throughput" in text and "SNIC" in text


class TestTable5:
    def test_applications_present(self, table5):
        assert set(table5.by_application()) == {"fio", "OVS", "REM", "Compress"}

    def test_fio_savings(self, table5):
        """Table 5: fio saves 2.7 % with the SNIC."""
        savings = table5.by_application()["fio"].savings_fraction
        assert 0.015 <= savings <= 0.045

    def test_ovs_savings(self, table5):
        """Table 5: OvS saves 1.7 %."""
        savings = table5.by_application()["OVS"].savings_fraction
        assert 0.008 <= savings <= 0.035

    def test_rem_costs_more(self, table5):
        """Table 5: REM loses 2.5 % — the SNIC premium isn't recovered."""
        savings = table5.by_application()["REM"].savings_fraction
        assert -0.04 <= savings <= -0.005

    def test_compress_dominant_savings(self, table5):
        """Table 5: Compress saves 70.7 % (fleet shrinks ~3.5x)."""
        comparison = table5.by_application()["Compress"]
        assert 0.60 <= comparison.savings_fraction <= 0.75
        assert comparison.nic_fleet.servers >= 25

    def test_equal_fleets_when_throughput_comparable(self, table5):
        for app in ("fio", "OVS", "REM"):
            comparison = table5.by_application()[app]
            assert comparison.nic_fleet.servers == comparison.snic_fleet.servers

    def test_tco_magnitude(self, table5):
        """Sanity: a 10-server SNIC fleet costs ~$99k over 5 years."""
        comparison = table5.by_application()["fio"]
        assert 90_000 <= comparison.snic_fleet.tco_usd <= 110_000
