"""Unit tests for the declarative experiment registry."""

import pytest

from repro.core.executor import ParallelExecutor
from repro.core.rng import RandomStreams
from repro.experiments import registry
from repro.experiments.registry import (
    DEFAULT_TIER,
    SMOKE_TIER,
    Experiment,
    ExperimentContext,
    Fidelity,
    smoke_tier,
)


def _spec(name, runner=None, **kwargs):
    return Experiment(
        name=name,
        title=name,
        runner=runner or (lambda ctx: name),
        formatter=str,
        tiers=smoke_tier(),
        **kwargs,
    )


@pytest.fixture
def scratch_registry():
    """Allow temporary registrations; restore the registry afterwards."""
    before = set(registry._REGISTRY)
    yield registry
    for name in set(registry._REGISTRY) - before:
        registry._REGISTRY.pop(name)
        registry._ORDER.remove(name)


class TestFidelity:
    def test_caps_are_minimums_not_overrides(self):
        tier = Fidelity(samples=40, requests=2_500)
        resolved = tier.resolve(200, 12_000, smoke=True)
        assert (resolved.samples, resolved.requests) == (40, 2_500)
        shrunk = tier.resolve(20, 600, smoke=True)
        assert (shrunk.samples, shrunk.requests) == (20, 600)

    def test_none_passes_invocation_values_through(self):
        resolved = Fidelity().resolve(123, 4_567, smoke=False)
        assert (resolved.samples, resolved.requests) == (123, 4_567)
        assert resolved.keys is None and resolved.rates_gbps is None

    def test_smoke_tier_declares_both_tiers(self):
        tiers = smoke_tier(keys=("a", "b"))
        assert tiers[DEFAULT_TIER] == Fidelity()
        assert tiers[SMOKE_TIER].keys == ("a", "b")


class TestExperimentSpec:
    def test_both_tiers_required(self):
        with pytest.raises(ValueError, match="must declare tiers"):
            Experiment(name="x", title="x", runner=lambda ctx: None,
                       formatter=str, tiers={DEFAULT_TIER: Fidelity()})

    def test_unknown_tier_rejected(self):
        with pytest.raises(KeyError, match="no fidelity tier"):
            _spec("x").tier("turbo")

    def test_csv_support_derived_from_writer(self):
        assert not _spec("x").supports_csv
        assert _spec("y", csv_writer=lambda s, r: 0).supports_csv

    def test_render_appends_chart_after_blank_line(self):
        plain = _spec("x", runner=lambda ctx: "R")
        assert plain.render("R") == "R"
        charted = _spec("y", chart=lambda result: "CHART")
        assert charted.render("R") == "R\n\nCHART"


class TestRegistryContents:
    def test_all_paper_artifacts_registered(self):
        assert set(registry.ARTIFACT_ORDER) <= set(registry.names())

    def test_names_follow_artifact_order(self):
        names = registry.names()
        known = [n for n in registry.ARTIFACT_ORDER if n in names]
        assert names[: len(known)] == known

    def test_csv_capability_matches_legacy_set(self):
        assert set(registry.csv_capable()) == {"fig4", "fig5", "fig6",
                                              "table5"}

    def test_unknown_name_raises_with_roster(self):
        with pytest.raises(KeyError, match="no registered experiment"):
            registry.get("nope")

    def test_declared_dependencies(self):
        assert registry.get("fig6").depends == ("fig4",)
        assert registry.get("table5").depends == ("table4",)
        assert registry.get("observations").depends == ("fig4", "fig5",
                                                        "fig6")

    def test_dependency_order_puts_upstreams_first(self):
        order = registry.dependency_order(["observations", "table5"])
        assert order.index("fig4") < order.index("fig6")
        assert order.index("fig6") < order.index("observations")
        assert order.index("table4") < order.index("table5")

    def test_every_spec_has_smoke_and_default_tier(self):
        for spec in registry.all_experiments():
            assert DEFAULT_TIER in spec.tiers and SMOKE_TIER in spec.tiers

    def test_every_spec_declares_a_schema(self):
        for spec in registry.all_experiments():
            assert spec.schema is not None, spec.name


class TestExperimentContext:
    def test_run_memoizes_per_invocation(self, scratch_registry):
        calls = []
        scratch_registry.register(
            _spec("t-memo", runner=lambda ctx: calls.append(1) or "ok"))
        ctx = ExperimentContext(streams=RandomStreams(1),
                                executor=ParallelExecutor(1))
        assert ctx.run("t-memo") == "ok"
        assert ctx.run("t-memo") == "ok"
        assert calls == [1]
        assert ctx.has_result("t-memo")

    def test_dependency_results_shared_through_run(self, scratch_registry):
        calls = []
        scratch_registry.register(
            _spec("t-up", runner=lambda ctx: calls.append(1) or 7))
        scratch_registry.register(
            _spec("t-down-a", runner=lambda ctx: ctx.run("t-up") + 1,
                  depends=("t-up",)))
        scratch_registry.register(
            _spec("t-down-b", runner=lambda ctx: ctx.run("t-up") + 2,
                  depends=("t-up",)))
        ctx = ExperimentContext(streams=RandomStreams(1),
                                executor=ParallelExecutor(1))
        assert ctx.run("t-down-a") == 8
        assert ctx.run("t-down-b") == 9
        assert calls == [1]

    def test_cycles_detected(self, scratch_registry):
        scratch_registry.register(
            _spec("t-cyc-a", runner=lambda ctx: ctx.run("t-cyc-b")))
        scratch_registry.register(
            _spec("t-cyc-b", runner=lambda ctx: ctx.run("t-cyc-a")))
        ctx = ExperimentContext(streams=RandomStreams(1),
                                executor=ParallelExecutor(1))
        with pytest.raises(RuntimeError, match="dependency cycle"):
            ctx.run("t-cyc-a")

    def test_fidelity_resolves_running_experiments_tier(self,
                                                       scratch_registry):
        seen = {}

        def runner(ctx):
            seen["fid"] = ctx.fidelity()
            return None

        scratch_registry.register(Experiment(
            name="t-fid", title="t", runner=runner, formatter=str,
            tiers=smoke_tier(samples=40, requests=2_500, keys=("k",)),
        ))
        ctx = ExperimentContext(streams=RandomStreams(1),
                                executor=ParallelExecutor(1),
                                tier=SMOKE_TIER, samples=200,
                                requests=12_000)
        ctx.run("t-fid")
        assert seen["fid"].samples == 40
        assert seen["fid"].requests == 2_500
        assert seen["fid"].keys == ("k",)
        assert seen["fid"].smoke

    def test_fidelity_outside_runner_requires_spec(self):
        ctx = ExperimentContext(streams=RandomStreams(1),
                                executor=ParallelExecutor(1))
        with pytest.raises(RuntimeError, match="inside a runner"):
            ctx.fidelity()
        # ...but an explicit spec works anywhere (the CLI does this).
        fid = ctx.fidelity(registry.get("fig4"))
        assert fid.samples == 200 and not fid.smoke

    def test_smoke_property_follows_tier(self):
        ctx = ExperimentContext(streams=RandomStreams(1),
                                executor=ParallelExecutor(1),
                                tier=SMOKE_TIER)
        assert ctx.smoke
        assert not ExperimentContext(streams=RandomStreams(1),
                                     executor=ParallelExecutor(1)).smoke
