"""Shared measured results for the experiment test suite.

Running the full Fig. 4 sweep takes ~15 s; the anchor tests share one
session-scoped run (profiles are cached inside the library, so the other
experiment fixtures reuse them too).
"""

import pytest

from repro.core.rng import RandomStreams
from repro.experiments import rows_from_fig4, run_fig4, run_fig5

SAMPLES = 150
N_REQUESTS = 10_000


@pytest.fixture(scope="session")
def fig4_rows():
    return run_fig4(samples=SAMPLES, n_requests=N_REQUESTS,
                    streams=RandomStreams(7))


@pytest.fixture(scope="session")
def fig4_by_key(fig4_rows):
    return {row.key: row for row in fig4_rows}


@pytest.fixture(scope="session")
def fig6_rows(fig4_rows):
    return rows_from_fig4(fig4_rows)


@pytest.fixture(scope="session")
def fig5_curves():
    return run_fig5(samples=120, n_requests=6000, streams=RandomStreams(7))
