"""Property tests for the hybrid analytic/simulation probe engine.

Two guarantees the report pipeline leans on:

* the validated analytic fast path only engages when the spot-check
  simulations agree with the model within tolerance — a disagreeing
  model must degrade the whole ladder back to batched simulation;
* engine selection never changes a headline number: the probe-verified
  max sustainable rate and the operating-point knee are identical with
  the hybrid engine on or off at tier-1 fidelity.
"""

import dataclasses

import pytest

from repro.core import hybrid, instrument
from repro.core.rng import RandomStreams
from repro.experiments import measurement
from repro.experiments.measurement import (
    estimate_capacity_rps,
    measure_operating_point,
    predict_fixed_rate,
    run_ladder,
    run_validated_ladder,
    sweep_operating_rate,
)
from repro.experiments.profiles import get_profile

N_REQUESTS = 4000
SAMPLES = 40


@pytest.fixture
def profile():
    return get_profile("udp:64", samples=SAMPLES)


def _ladder_rates(profile, platform="host"):
    """A grid straddling the knee window: below, inside, and above."""
    anchor = min(estimate_capacity_rps(profile, platform),
                 measurement._nic_cap_rps(profile))
    return [anchor * f for f in (0.2, 0.4, 0.6, 0.8, 0.95, 1.05, 1.3, 1.6)]


class TestValidatedLadder:
    def test_fast_path_engages_inside_tolerance(self, profile):
        rates = _ladder_rates(profile)
        before = instrument.value(instrument.ANALYTIC_HITS)
        results = run_validated_ladder(
            profile, "host", rates, RandomStreams(3), N_REQUESTS)
        analytic = [m for m in results if m.extra.get("probe.analytic")]
        # udp:64 is a well-behaved M/G/1 curve: the spot checks agree,
        # so the out-of-window rungs are answered analytically.
        assert analytic
        assert (instrument.value(instrument.ANALYTIC_HITS) - before
                == len(analytic))

    def test_window_rungs_always_simulated(self, profile):
        rates = _ladder_rates(profile)
        results = run_validated_ladder(
            profile, "host", rates, RandomStreams(3), N_REQUESTS)
        cfg = hybrid.config()
        anchor = min(estimate_capacity_rps(profile, "host"),
                     measurement._nic_cap_rps(profile))
        for rate, metrics in zip(rates, results):
            factor = rate / anchor
            if cfg.sim_window_lo <= factor <= cfg.sim_window_hi:
                assert not metrics.extra.get("probe.analytic"), (
                    f"knee-window rung at factor {factor:.2f} was not "
                    f"simulated")

    def test_simulated_rungs_match_plain_ladder(self, profile):
        rates = _ladder_rates(profile)
        results = run_validated_ladder(
            profile, "host", rates, RandomStreams(3), N_REQUESTS)
        reference = run_ladder(
            profile, "host", rates, RandomStreams(3), N_REQUESTS)
        for got, want in zip(results, reference):
            if not got.extra.get("probe.analytic"):
                assert got.latency_p99 == want.latency_p99
                assert got.completed_rate == want.completed_rate

    def test_disagreeing_model_degrades_to_full_simulation(
            self, profile, monkeypatch):
        def utopian_prediction(profile_, platform, rate, n_requests=20_000):
            # A model claiming every rate is served perfectly at zero
            # latency: the low spot check fails the p99 tolerance and
            # the high spot check disagrees on overload acceptability.
            real = predict_fixed_rate(profile_, platform, rate, n_requests)
            return dataclasses.replace(
                real, completed_rate=rate, completed=n_requests, dropped=0,
                latency_p50=1e-9, latency_p99=1e-9, latency_mean=1e-9)

        monkeypatch.setattr(
            measurement, "predict_fixed_rate", utopian_prediction)
        rates = _ladder_rates(profile)
        before = instrument.value(instrument.ANALYTIC_HITS)
        results = run_validated_ladder(
            profile, "host", rates, RandomStreams(5), N_REQUESTS)
        # No rung trusted the analytic model ...
        assert instrument.value(instrument.ANALYTIC_HITS) == before
        assert not any(m.extra.get("probe.analytic") for m in results)
        # ... and the degraded ladder is exactly the plain simulation.
        reference = run_ladder(
            profile, "host", rates, RandomStreams(5), N_REQUESTS)
        assert ([m.latency_p99 for m in results]
                == [m.latency_p99 for m in reference])
        assert ([m.completed_rate for m in results]
                == [m.completed_rate for m in reference])


class TestEngineEquivalence:
    @pytest.mark.parametrize("key", ["udp:64", "redis:a"])
    def test_operating_point_identical_hybrid_on_off(self, key):
        profile = get_profile(key, samples=SAMPLES)
        points = {}
        for engine in ("sim", "hybrid"):
            with hybrid.engine_scope(engine):
                points[engine] = measure_operating_point(
                    profile, "host", RandomStreams(9), N_REQUESTS)
        assert points["hybrid"].capacity_rps == points["sim"].capacity_rps
        assert (points["hybrid"].metrics.latency_p99
                == points["sim"].metrics.latency_p99)
        assert (points["hybrid"].metrics.completed_rate
                == points["sim"].metrics.completed_rate)

    def test_sweep_rate_identical_hybrid_on_off(self):
        profile = get_profile("udp:64", samples=SAMPLES)
        # Populate the trust region first so the hybrid sweep actually
        # exercises the analytic skip path instead of trivially
        # simulating every probe.
        with hybrid.engine_scope("hybrid"):
            measure_operating_point(
                profile, "host", RandomStreams(7), N_REQUESTS)
            hybrid_result = sweep_operating_rate(
                profile, "host", RandomStreams(7), N_REQUESTS)
        with hybrid.engine_scope("sim"):
            sim_result = sweep_operating_rate(
                profile, "host", RandomStreams(7), N_REQUESTS)
        assert hybrid_result.max_rate == sim_result.max_rate
        assert (hybrid_result.metrics.latency_p99
                == sim_result.metrics.latency_p99)
        assert (hybrid_result.metrics.completed_rate
                == sim_result.metrics.completed_rate)
        # The skipped probes show up as saved work, never as a
        # different answer.
        assert len(hybrid_result.probes) <= len(sim_result.probes) + 1
