"""Tests for the measurement layer: fixed-rate runs, knees, power loads."""

import numpy as np
import pytest

from repro.calibration import LINE_RATE_GBPS
from repro.core import instrument
from repro.core.rng import RandomStreams
from repro.experiments.measurement import (
    ACCEL_PLATFORM,
    MeasurementError,
    component_load,
    cpu_service_seconds,
    estimate_capacity_rps,
    measure_operating_point,
    run_fixed_rate,
    sweep_operating_rate,
)
from repro.experiments.profiles import get_profile


@pytest.fixture
def streams():
    return RandomStreams(11)


class TestServiceTimes:
    def test_snic_kernel_service_slower(self):
        profile = get_profile("udp:64", samples=10)
        host = cpu_service_seconds(profile, "host").mean()
        snic = cpu_service_seconds(profile, "snic-cpu").mean()
        assert snic > 4 * host

    def test_local_function_has_no_stack_cost(self):
        profile = get_profile("crypto:aes", samples=10)
        services = cpu_service_seconds(profile, "host")
        # 512 AES blocks at 42 cycles / 2.1 GHz
        assert services.mean() == pytest.approx(512 * 42 / 2.1e9, rel=0.01)


class TestRunFixedRate:
    def test_light_load_sustained(self, streams):
        profile = get_profile("udp:64", samples=20)
        metrics = run_fixed_rate(profile, "host", 10_000.0, streams, 4000)
        assert metrics.sustained
        assert metrics.completed_rate == pytest.approx(10_000.0, rel=0.1)

    def test_overload_not_sustained(self, streams):
        profile = get_profile("udp:64", samples=20)
        metrics = run_fixed_rate(profile, "host", 5e6, streams, 4000)
        assert not metrics.sustained

    def test_latency_grows_with_load(self, streams):
        profile = get_profile("redis:a", samples=50)
        light = run_fixed_rate(profile, "host", 20_000.0, streams, 6000)
        heavy = run_fixed_rate(profile, "host", 380_000.0, streams, 6000)
        assert heavy.latency_p99 > light.latency_p99

    def test_unknown_platform_rejected(self, streams):
        profile = get_profile("udp:64", samples=10)
        with pytest.raises(MeasurementError):
            run_fixed_rate(profile, "gpu", 100.0, streams, 100)

    def test_platform_not_in_profile_rejected(self, streams):
        profile = get_profile("rem:file_image", samples=30)
        with pytest.raises(MeasurementError):
            run_fixed_rate(profile, "snic-cpu", 100.0, streams, 100)

    def test_accel_path_requires_engine(self, streams):
        profile = get_profile("redis:a", samples=20)
        with pytest.raises(MeasurementError):
            run_fixed_rate(profile, ACCEL_PLATFORM, 100.0, streams, 100)

    def test_nic_line_rate_clips(self, streams):
        """No networked function can exceed 100 Gb/s of wire traffic."""
        profile = get_profile("dpdk:1024", samples=10)
        metrics = run_fixed_rate(profile, "host", 3e7, streams, 6000)
        assert metrics.goodput_gbps <= LINE_RATE_GBPS * 1.02

    def test_deterministic_given_streams(self):
        profile = get_profile("udp:64", samples=20)
        a = run_fixed_rate(profile, "host", 50_000.0, RandomStreams(5), 4000)
        b = run_fixed_rate(profile, "host", 50_000.0, RandomStreams(5), 4000)
        assert a.latency_p99 == b.latency_p99
        assert a.completed_rate == b.completed_rate


class TestCapacityEstimates:
    def test_estimate_close_to_measured_knee(self, streams):
        profile = get_profile("redis:a", samples=50)
        estimate = estimate_capacity_rps(profile, "host")
        point = measure_operating_point(profile, "host", streams, 6000)
        assert point.capacity_rps == pytest.approx(estimate, rel=0.35)

    def test_accel_estimate_includes_batching(self):
        profile = get_profile("compression:txt", samples=8)
        estimate = estimate_capacity_rps(profile, ACCEL_PLATFORM)
        assert estimate > 0


class TestOperatingPoint:
    def test_power_fields_consistent(self, streams):
        profile = get_profile("udp:64", samples=20)
        point = measure_operating_point(profile, "host", streams, 4000)
        assert point.server_power_w >= 252.0
        assert point.device_power_w == pytest.approx(29.0)  # SNIC idles

    def test_snic_processing_heats_snic_only(self, streams):
        profile = get_profile("udp:64", samples=20)
        point = measure_operating_point(profile, "snic-cpu", streams, 4000)
        assert point.device_power_w > 29.0
        assert point.load.host_busy_cores == 0.0

    def test_accel_point_engages_engine(self, streams):
        profile = get_profile("rem:file_executable", samples=40)
        point = measure_operating_point(profile, ACCEL_PLATFORM, streams, 4000)
        assert "rem" in point.load.accel_engaged
        assert point.load.accel_utilization["rem"] > 0.3

    def test_load_fraction_override_respected(self, streams):
        profile = get_profile("ovs:10", samples=100)
        point = measure_operating_point(profile, "host", streams, 4000)
        # 10 % of line rate at MTU ~ 0.8 Mpps, far below capacity
        assert point.metrics.offered_rate < 0.2 * point.capacity_rps / 0.1


class TestComponentLoad:
    def test_dpdk_spin_floor(self):
        """Poll-mode cores burn power even at near-zero load (Table 4)."""
        profile = get_profile("rem:file_executable", samples=40)
        load = component_load(profile, "host", completed_rate=100.0)
        assert load.host_busy_cores >= 8 * 0.25 * 0.99

    def test_kernel_stack_no_spin(self):
        profile = get_profile("udp:64", samples=20)
        load = component_load(profile, "host", completed_rate=100.0)
        assert load.host_busy_cores < 0.5

    def test_utilization_capped(self):
        profile = get_profile("udp:64", samples=20)
        load = component_load(profile, "host", completed_rate=1e12)
        assert load.host_busy_cores <= 8.0


class TestSweepOperatingRate:
    """Warm-started adaptive sweeps vs the cold search, end to end."""

    # fig4 smoke set: kernel-stack + DPDK at 64B, on host and SNIC CPU.
    CASES = [("udp:64", "host"), ("udp:64", "snic-cpu"),
             ("dpdk:64", "host"), ("dpdk:64", "snic-cpu")]
    # Probe noise at the saturation knee shrinks with run length;
    # 50k requests keeps warm/cold divergence deterministically under
    # the sweep's own 2% bisection tolerance.
    N_REQUESTS = 50_000

    @pytest.mark.parametrize("key,platform", CASES)
    def test_warm_matches_cold_with_fewer_probes(self, key, platform):
        profile = get_profile(key, samples=60)
        warm = sweep_operating_rate(
            profile, platform, RandomStreams(1), n_requests=self.N_REQUESTS,
            warm=True)
        cold = sweep_operating_rate(
            profile, platform, RandomStreams(1), n_requests=self.N_REQUESTS,
            warm=False)
        assert warm.sustainable and cold.sustainable
        rel = abs(warm.max_rate - cold.max_rate) / cold.max_rate
        assert rel <= 0.02
        assert len(warm.probes) < len(cold.probes)

    def test_warm_sweep_credits_saved_probes(self):
        profile = get_profile("udp:64", samples=60)
        before = instrument.value(instrument.PROBES_SAVED)
        sweep_operating_rate(profile, "host", RandomStreams(1),
                             n_requests=self.N_REQUESTS, warm=True)
        assert instrument.value(instrument.PROBES_SAVED) > before
