"""Paper-anchor tests: every quantitative claim of §4-§5 checked against
the measured reproduction.

Each test names the paper statement it verifies.  Bands are the paper's
numbers with a tolerance wide enough for simulation noise but tight
enough that a broken model fails.  Known deviations (kernel-stack p99
amplification; SHA-1 efficiency) are asserted at their *documented* bands
and cross-referenced in EXPERIMENTS.md.
"""

import pytest


def ratio(by_key, key):
    return by_key[key].throughput_ratio


class TestHeadlineRanges:
    def test_throughput_ratio_span(self, fig4_rows):
        """§4: SNIC gives 0.1x-3.5x the host's maximum throughput."""
        ratios = [r.throughput_ratio for r in fig4_rows]
        assert 0.08 <= min(ratios) <= 0.25
        assert 2.3 <= max(ratios) <= 3.8

    def test_p99_ratio_span(self, fig4_rows):
        """§4: SNIC gives 0.1x-13.8x the host's p99 latency."""
        ratios = [r.p99_ratio for r in fig4_rows]
        assert min(ratios) < 0.6
        assert 1.5 <= max(ratios) <= 14.0

    def test_efficiency_ratio_span(self, fig6_rows):
        """§4: SNIC gives 0.2x-3.8x the host's energy efficiency."""
        ratios = [r.efficiency_ratio for r in fig6_rows]
        assert 0.15 <= min(ratios) <= 0.3
        assert 2.8 <= max(ratios) <= 4.2


class TestObservation1Anchors:
    def test_udp_micro_throughput_band(self, fig4_by_key):
        """§4 KO1: SNIC UDP throughput 76.5-85.7 % lower than host."""
        for key in ("udp:64", "udp:1024"):
            assert 0.125 <= ratio(fig4_by_key, key) <= 0.25, key

    def test_udp_micro_p99_direction(self, fig4_by_key):
        """§4 KO1: SNIC UDP p99 is higher (paper: 1.1-1.4x; our queueing
        model amplifies to ~2-3x — documented deviation)."""
        for key in ("udp:64", "udp:1024"):
            assert 1.1 <= fig4_by_key[key].p99_ratio <= 4.0, key

    def test_rdma_micro_throughput(self, fig4_by_key):
        """§4 KO1: SNIC RDMA up to 1.4x host throughput."""
        assert 1.1 <= ratio(fig4_by_key, "rdma:1024") <= 1.45

    def test_rdma_micro_p99_lower_on_snic(self, fig4_by_key):
        """§4 KO1: SNIC RDMA p99 14.6-24.3 % lower (we allow a wider band:
        knee-detection noise)."""
        assert 0.4 <= fig4_by_key["rdma:1024"].p99_ratio <= 0.95

    def test_dpdk_line_rate_at_1kb(self, fig4_by_key):
        """§3.3: one core reaches ~100 Gb/s with 1 KB packets on both."""
        row = fig4_by_key["dpdk:1024"]
        assert row.host.goodput_gbps > 85.0
        assert row.snic.goodput_gbps > 85.0

    def test_tcp_udp_functions_within_paper_band(self, fig4_by_key):
        """§4 KO1: SNIC 20.6-89.5 % lower throughput for TCP/UDP functions."""
        keys = ("redis:a", "redis:b", "redis:c", "snort:file_image",
                "snort:file_flash", "snort:file_executable", "nat:10k",
                "nat:1m", "bm25:100", "bm25:1k")
        for key in keys:
            assert 0.10 <= ratio(fig4_by_key, key) <= 0.80, key

    def test_tcp_udp_p99_band(self, fig4_by_key):
        """§4 KO1: 1.1-3.2x higher p99 for TCP/UDP functions (we allow
        up to 3.6 for knee noise)."""
        keys = ("redis:a", "redis:b", "redis:c", "nat:10k", "nat:1m",
                "bm25:100", "bm25:1k", "snort:file_image")
        for key in keys:
            assert 1.1 <= fig4_by_key[key].p99_ratio <= 3.6, key

    def test_mica_band(self, fig4_by_key):
        """§4 KO1: MICA 19.5-54.5 % lower throughput, 6.7-26.2 % higher p99."""
        assert 0.42 <= ratio(fig4_by_key, "mica:32") <= 0.60
        assert 0.65 <= ratio(fig4_by_key, "mica:4") <= 0.85
        for key in ("mica:4", "mica:32"):
            assert 0.95 <= fig4_by_key[key].p99_ratio <= 1.6, key

    def test_fio_throughput_parity(self, fig4_by_key):
        """§4 KO1: SNIC matches host throughput for fio."""
        for key in ("fio:read", "fio:write"):
            assert 0.9 <= ratio(fig4_by_key, key) <= 1.12, key


class TestObservation2Anchors:
    def test_aes_host_wins(self, fig4_by_key):
        """§4 KO2: host 38.5 % higher max throughput for AES (ratio ~0.72)."""
        assert 0.62 <= ratio(fig4_by_key, "crypto:aes") <= 0.82

    def test_rsa_host_wins(self, fig4_by_key):
        """§4 KO2: host 91.2 % higher for RSA (ratio ~0.52)."""
        assert 0.42 <= ratio(fig4_by_key, "crypto:rsa") <= 0.63

    def test_sha1_accelerator_wins(self, fig4_by_key):
        """§4 KO2: host 47.2 % lower for SHA-1 (accel ~1.9x host)."""
        assert 1.6 <= ratio(fig4_by_key, "crypto:sha1") <= 2.2

    def test_rem_image_accelerator_wins(self, fig4_by_key):
        """§4 KO2/KO4: accel 1.8x host for REM with file_image."""
        assert 1.5 <= ratio(fig4_by_key, "rem:file_image") <= 2.1

    def test_rem_other_rulesets_host_wins(self, fig4_by_key):
        """§4 KO4: accel only 0.6x host for file_flash / file_executable."""
        for key in ("rem:file_flash", "rem:file_executable"):
            assert 0.45 <= ratio(fig4_by_key, key) <= 0.72, key

    def test_compression_accelerator_wins_big(self, fig4_by_key):
        """§4 KO2: accel up to 3.5x host for Compression."""
        ratios = [ratio(fig4_by_key, "compression:app"),
                  ratio(fig4_by_key, "compression:txt")]
        assert all(2.3 <= r <= 3.8 for r in ratios)
        assert max(ratios) >= 2.8


class TestObservation3Anchors:
    def test_accelerator_capped_near_50g(self, fig5_curves):
        """§4 KO3 / Fig. 5: REM accelerator caps at ~50 Gb/s."""
        for ruleset, curves in fig5_curves.items():
            accel = next(c for c in curves if c.platform == "snic-accel")
            assert 40.0 <= accel.max_achieved_gbps() <= 56.0, ruleset

    def test_host_exe_reaches_78g_with_8_cores(self, fig5_curves):
        """Fig. 5: host file_executable scales to ~78 Gb/s on 8 cores."""
        curves = fig5_curves["file_executable"]
        eight = next(c for c in curves if c.label == "host-8c")
        assert 68.0 <= eight.max_achieved_gbps() <= 90.0

    def test_host_image_walls_near_40g(self, fig5_curves):
        """Fig. 5 / §4 KO4: host file_image p99 explodes past ~40 Gb/s."""
        curves = fig5_curves["file_image"]
        eight = next(c for c in curves if c.label == "host-8c")
        assert 30.0 <= eight.max_achieved_gbps() <= 48.0

    def test_host_cores_scale(self, fig5_curves):
        """Fig. 5: host throughput grows with core count."""
        for ruleset in fig5_curves:
            curves = {c.label: c.max_achieved_gbps() for c in fig5_curves[ruleset]}
            assert curves["host-1c"] < curves["host-4c"] < curves["host-8c"]

    def test_accel_p99_at_capacity_near_25us(self, fig5_curves):
        """§4 KO4: the accelerator serves REM at ~25.1 us p99 (host: 5.1)."""
        curves = fig5_curves["file_executable"]
        accel = next(c for c in curves if c.platform == "snic-accel")
        below_cap = [p for p in accel.points if p.offered_gbps <= 45]
        p99s = [p.p99_latency_s for p in below_cap]
        assert 18e-6 <= min(p99s) <= 40e-6
        host8 = next(c for c in curves if c.label == "host-8c")
        host_low = [p.p99_latency_s for p in host8.points if p.offered_gbps <= 40]
        assert 4e-6 <= min(host_low) <= 12e-6


class TestObservation4And5:
    def test_fio_p99_flips_by_operation(self, fig4_by_key):
        """§4 KO4: host 36 % lower p99 for reads, 18.2 % higher for writes."""
        assert 1.2 <= fig4_by_key["fio:read"].p99_ratio <= 1.75
        assert 0.70 <= fig4_by_key["fio:write"].p99_ratio <= 1.0

    def test_efficiency_winners(self, fig6_rows):
        """§4 KO5: fio / REM(image) / SHA-1 / Compression gain efficiency."""
        by_key = {r.key: r for r in fig6_rows}
        assert 1.05 <= by_key["fio:read"].efficiency_ratio <= 1.45  # paper 1.1-1.3
        assert 2.1 <= by_key["rem:file_image"].efficiency_ratio <= 2.9  # paper 2.5
        assert by_key["crypto:sha1"].efficiency_ratio > 1.5  # paper 1.9 (we ~2.5)
        assert 2.9 <= by_key["compression:txt"].efficiency_ratio <= 3.9  # paper 3.4-3.8

    def test_efficiency_losers(self, fig6_rows):
        """§4 KO5: offload does NOT pay off for kernel-stack functions."""
        by_key = {r.key: r for r in fig6_rows}
        for key in ("redis:a", "nat:10k", "snort:file_executable", "udp:64"):
            assert by_key[key].efficiency_ratio < 0.5, key

    def test_idle_power_dominates(self, fig6_rows):
        """§4 KO5: the server idle floor (252 W) dominates every run."""
        for row in fig6_rows:
            assert row.snic_power_w < 1.25 * 252.0
            assert row.host_power_w < 1.75 * 252.0

    def test_snic_device_power_bounded(self, fig6_rows):
        """§4: the SNIC never draws more than ~5.4 W above its 29 W idle."""
        for row in fig6_rows:
            assert 29.0 <= row.snic_device_w <= 29.0 + 6.5


class TestObservationVerdicts:
    def test_all_five_observations_hold(self, fig4_rows, fig5_curves, fig6_rows):
        from repro.experiments.observations import (
            observation_1,
            observation_2,
            observation_3,
            observation_4,
            observation_5,
        )

        verdicts = [
            observation_1(fig4_rows),
            observation_2(fig4_rows),
            observation_3(fig5_curves),
            observation_4(fig4_rows),
            observation_5(fig6_rows),
        ]
        failing = [v.observation for v in verdicts if not v.holds]
        assert not failing, f"observations failing: {failing}"
