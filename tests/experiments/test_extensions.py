"""Tests for the extension experiments: Strategy 1 what-ifs, inflate,
and the configuration-table renderers."""

import pytest

from repro.analysis.tables import (
    format_all_tables,
    format_table1,
    format_table2,
    format_table3,
)
from repro.core.rng import RandomStreams
from repro.experiments.measurement import ACCEL_PLATFORM, measure_operating_point
from repro.experiments.profiles import EXTENSION_PROFILE_KEYS, get_profile
from repro.experiments.strategy1 import (
    AGGRESSIVE,
    BASELINE,
    PARTIAL,
    OffloadScenario,
    format_strategy1,
    rows_by_scenario,
    run_strategy1,
)


class TestStrategy1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_strategy1(
            keys=("udp:64", "redis:a"), samples=100, n_requests=6000,
            streams=RandomStreams(13),
        )

    def test_offload_monotonically_improves_snic(self, rows):
        """More stack offload -> higher SNIC/host ratio, every function."""
        by_scenario = rows_by_scenario(rows)
        for key in ("udp:64", "redis:a"):
            today = by_scenario["today"][key]
            partial = by_scenario["partial-offload"][key]
            aggressive = by_scenario["datapath-offload"][key]
            assert today < partial < aggressive, key

    def test_baseline_matches_fig4(self, rows):
        """Scenario 'today' must reproduce the kernel-stack deficit."""
        by_scenario = rows_by_scenario(rows)
        assert by_scenario["today"]["udp:64"] < 0.25

    def test_partial_offload_recovers_half(self, rows):
        """AccelTCP-style offload recovers a large share of the gap."""
        by_scenario = rows_by_scenario(rows)
        assert by_scenario["partial-offload"]["redis:a"] > 0.35

    def test_calibration_restored_after_run(self, rows):
        from repro import calibration

        assert calibration.PLATFORMS["snic-cpu"] is calibration.SNIC_CPU

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            OffloadScenario("bad", 1.0, 0.5)
        with pytest.raises(ValueError):
            OffloadScenario("bad", 0.5, 0.0)

    def test_formatting(self, rows):
        text = format_strategy1(rows)
        assert "udp:64" in text and "datapath-offload" in text


class TestInflateExtension:
    def test_profiles_build(self):
        expected_modes = {"decompression": "inflate", "ipsec": "esp"}
        for key in EXTENSION_PROFILE_KEYS:
            profile = get_profile(key, samples=8)
            assert profile.accel_mode == expected_modes[key.split(":")[0]]
            assert profile.work_samples

    def test_host_decodes_faster_than_engine(self):
        """Extension finding: inflate is cheap on the host (no match
        search), so the engine loses — offload asymmetry within one
        function family."""
        streams = RandomStreams(3)
        profile = get_profile("decompression:txt", samples=8)
        host = measure_operating_point(profile, "host", streams, 6000)
        accel = measure_operating_point(profile, ACCEL_PLATFORM, streams, 6000)
        assert accel.throughput_rps < host.throughput_rps

    def test_inflate_work_lighter_than_deflate(self):
        inflate = get_profile("decompression:txt", samples=8).mean_work()
        compress = get_profile("compression:txt", samples=8).mean_work()
        assert inflate.get("lz_byte") == 0.0
        assert compress.get("lz_byte") > 0.0


class TestConfigurationTables:
    def test_table1_contents(self):
        text = format_table1()
        assert "ARMv8 A72" in text
        assert "16 GB" in text
        assert "Gen 4.0" in text

    def test_table2_contents(self):
        text = format_table2()
        assert "E5-2640" in text and "6140" in text
        assert "BlueField-2" in text

    def test_table3_matrix(self):
        text = format_table3()
        assert "Redis" in text
        assert "tcp" in text
        # crypto runs on all three platforms
        crypto_line = next(l for l in text.splitlines() if "Crypto" in l)
        assert crypto_line.count("x") == 3

    def test_all_tables_concatenate(self):
        text = format_all_tables()
        assert "Table 1" in text and "Table 2" in text and "Table 3" in text
