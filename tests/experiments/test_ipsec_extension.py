"""Tests for the IPsec extension experiment."""

import pytest

from repro.core.rng import RandomStreams
from repro.experiments.measurement import ACCEL_PLATFORM, measure_operating_point
from repro.experiments.profiles import get_profile


@pytest.fixture(scope="module")
def points():
    streams = RandomStreams(21)
    profile = get_profile("ipsec:encap", samples=60)
    return {
        platform: measure_operating_point(profile, platform, streams, 6000)
        for platform in ("host", "snic-cpu", ACCEL_PLATFORM)
    }


class TestIpsecExtension:
    def test_profile_work_from_real_esp(self):
        work = get_profile("ipsec:encap", samples=40).mean_work()
        assert work.get("aes_block") >= 64  # 1 KB payload
        assert work.get("sha1_block") > 0

    def test_snic_cpu_loses_as_usual(self, points):
        """KO1 again: the kernel stack + scalar AES bury the A72s."""
        assert points["snic-cpu"].throughput_rps < 0.4 * points["host"].throughput_rps

    def test_engine_plus_kernel_bypass_wins(self, points):
        """The combination the engine exists for: DPDK staging + AES/SHA
        in hardware beats the host's kernel gateway severalfold."""
        ratio = points[ACCEL_PLATFORM].throughput_rps / points["host"].throughput_rps
        assert 2.0 <= ratio <= 6.0

    def test_engine_latency_beats_kernel_floor(self, points):
        """The offloaded path also wins p99 — it sheds the kernel RTT."""
        assert points[ACCEL_PLATFORM].p99_latency_s < points["host"].p99_latency_s

    def test_decap_mirrors_encap(self):
        streams = RandomStreams(22)
        encap = get_profile("ipsec:encap", samples=40)
        decap = get_profile("ipsec:decap", samples=40)
        host_encap = measure_operating_point(encap, "host", streams, 5000)
        host_decap = measure_operating_point(decap, "host", streams, 5000)
        assert host_decap.throughput_rps == pytest.approx(
            host_encap.throughput_rps, rel=0.2
        )
