"""Tests for the packet-accurate testbed (eSwitch, PCIe, server assembly)."""

import pytest

from repro.core import Simulator
from repro.hardware.specs import BLUEFIELD2
from repro.netstack.packet import PROTO_UDP, Packet
from repro.testbed import (
    CONSUME,
    Destination,
    ESwitch,
    OperationMode,
    PcieLink,
    SnicServer,
    consume_all,
    forward_all,
    reply_all,
    run_udp_echo_measurement,
)


def make_packet(dst_ip=2, payload=b"x" * 64, packet_id=1):
    return Packet(proto=PROTO_UDP, src_ip=1, src_port=9000, dst_ip=dst_ip,
                  dst_port=53, payload=payload, packet_id=packet_id)


class TestPcieLink:
    def test_doorbell_latency_only(self):
        sim = Simulator()
        link = PcieLink(sim, BLUEFIELD2.pcie)
        times = []
        link.doorbell().add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times[0] == pytest.approx(BLUEFIELD2.pcie.transaction_latency_s)

    def test_transfer_adds_serialization(self):
        sim = Simulator()
        link = PcieLink(sim, BLUEFIELD2.pcie)
        times = []
        link.transfer(1 << 20).add_callback(lambda e: times.append(sim.now))
        sim.run()
        expected = (1 << 20) / link.bytes_per_second + BLUEFIELD2.pcie.transaction_latency_s
        assert times[0] == pytest.approx(expected)

    def test_fifo_serialization(self):
        sim = Simulator()
        link = PcieLink(sim, BLUEFIELD2.pcie)
        times = []
        link.transfer(1 << 20).add_callback(lambda e: times.append(("a", sim.now)))
        link.transfer(1 << 20).add_callback(lambda e: times.append(("b", sim.now)))
        sim.run()
        assert times[1][1] > times[0][1]

    def test_negative_size_rejected(self):
        sim = Simulator()
        link = PcieLink(sim, BLUEFIELD2.pcie)
        with pytest.raises(ValueError):
            link.transfer(-1)

    def test_utilization_accounting(self):
        sim = Simulator()
        link = PcieLink(sim, BLUEFIELD2.pcie)
        link.transfer(1 << 26)
        sim.run()
        assert 0.0 < link.utilization() <= 1.0


class TestESwitch:
    def test_on_path_steers_everything_to_snic(self):
        sim = Simulator()
        switch = ESwitch(sim, mode=OperationMode.ON_PATH)
        seen = {"snic": 0, "host": 0}
        switch.attach(Destination.SNIC_CPU, lambda p: seen.__setitem__("snic", seen["snic"] + 1))
        switch.attach(Destination.HOST, lambda p: seen.__setitem__("host", seen["host"] + 1))
        for dst in (2, 3, 4):
            switch.ingress(make_packet(dst_ip=dst))
        sim.run()
        assert seen == {"snic": 3, "host": 0}

    def test_off_path_steers_by_address(self):
        sim = Simulator()
        switch = ESwitch(sim, mode=OperationMode.OFF_PATH)
        seen = {"snic": [], "host": []}
        switch.attach(Destination.SNIC_CPU, lambda p: seen["snic"].append(p.dst_ip))
        switch.attach(Destination.HOST, lambda p: seen["host"].append(p.dst_ip))
        switch.map_address(7, Destination.SNIC_CPU)
        switch.ingress(make_packet(dst_ip=7))
        switch.ingress(make_packet(dst_ip=8))  # unmapped -> host
        sim.run()
        assert seen["snic"] == [7]
        assert seen["host"] == [8]

    def test_wire_mapping_rejected(self):
        sim = Simulator()
        switch = ESwitch(sim)
        with pytest.raises(ValueError):
            switch.map_address(1, Destination.WIRE)

    def test_unattached_destination_drops(self):
        sim = Simulator()
        switch = ESwitch(sim)
        switch.ingress(make_packet())
        sim.run()
        assert switch.dropped_no_receiver == 1

    def test_forwarding_latency(self):
        sim = Simulator()
        switch = ESwitch(sim, forwarding_latency_s=300e-9)
        arrivals = []
        switch.attach(Destination.SNIC_CPU, lambda p: arrivals.append(sim.now))
        switch.ingress(make_packet())
        sim.run()
        wire_time = 106 / switch.bytes_per_second
        assert arrivals[0] == pytest.approx(300e-9 + wire_time)


class TestSnicServer:
    def test_snic_echo_round_trip(self):
        sim = Simulator()
        server = SnicServer(sim, reply_all, consume_all)
        measurement = run_udp_echo_measurement(sim, server, "snic", 50, 20e-6)
        sim.run()
        assert measurement.latencies.count == 50
        assert 2e-6 < measurement.latencies.mean() < 20e-6

    def test_host_path_slower_than_snic_path(self):
        """On-path delivery to the host pays PCIe twice per RTT."""

        def measure(serve_on):
            sim = Simulator()
            server = SnicServer(sim, consume_all, consume_all,
                                snic_service_s=1e-6, host_service_s=1e-6)
            measurement = run_udp_echo_measurement(sim, server, serve_on, 200, 20e-6)
            sim.run()
            return measurement.latencies.mean()

        assert measure("host") > measure("snic")

    def test_forwarding_counts(self):
        sim = Simulator()
        server = SnicServer(sim, forward_all, consume_all)
        run_udp_echo_measurement(sim, server, "host", 30, 10e-6)
        sim.run()
        assert server.snic.stats.forwarded == 30
        assert server.host.stats.replied == 30
        assert server.pcie_to_host.transactions == 30

    def test_snic_core_contention_queues(self):
        """One slow SNIC core: back-to-back packets see queueing delay."""
        sim = Simulator()
        server = SnicServer(sim, reply_all, consume_all,
                            snic_service_s=50e-6, snic_cores=1)
        measurement = run_udp_echo_measurement(sim, server, "snic", 20, 1e-6)
        sim.run()
        assert measurement.latencies.max() > 10 * measurement.latencies.percentile(1)

    def test_invalid_serve_on(self):
        sim = Simulator()
        server = SnicServer(sim, reply_all, consume_all)
        with pytest.raises(ValueError):
            run_udp_echo_measurement(sim, server, "accelerator", 1, 1e-6)


class TestCrossValidation:
    def test_testbed_latency_consistent_with_calibrated_base_rtt(self):
        """The packet-accurate testbed's low-load RTT must land within the
        same order as the fast path's DPDK latency floor — the two models
        describe one machine."""
        from repro.calibration import PLATFORMS

        sim = Simulator()
        snic_service = PLATFORMS["snic-cpu"].stack_seconds("dpdk", 64)
        server = SnicServer(sim, consume_all, consume_all,
                            snic_service_s=snic_service)
        measurement = run_udp_echo_measurement(
            sim, server, "snic", 300, 50e-6, wire_latency_s=1e-6
        )
        sim.run()
        fast_path_floor = PLATFORMS["snic-cpu"].stacks["dpdk"].base_rtt_mean_s
        assert 0.5 * fast_path_floor < measurement.latencies.mean() < 3 * fast_path_floor
