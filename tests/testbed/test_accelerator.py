"""Tests for the DOCA-style accelerator device."""

import pytest

from repro.core import Simulator
from repro.functions.regex.rulesets import load_ruleset
from repro.testbed.accelerator import (
    AcceleratorDevice,
    DocaError,
    compression_device,
    rem_device,
)


class TestDeviceContract:
    def test_unknown_engine_rejected(self):
        with pytest.raises(DocaError):
            AcceleratorDevice(Simulator(), "quantum")

    def test_unknown_mode_rejected(self):
        with pytest.raises(DocaError):
            AcceleratorDevice(Simulator(), "compression", mode="brotli")

    def test_submit_before_program_rejected(self):
        device = AcceleratorDevice(Simulator(), "rem")
        with pytest.raises(DocaError):
            device.submit([b"data"])

    def test_empty_job_rejected(self):
        device = AcceleratorDevice(Simulator(), "rem")
        device.program(lambda b: None)
        with pytest.raises(DocaError):
            device.submit([])

    def test_batch_limit_enforced(self):
        device = AcceleratorDevice(Simulator(), "rem")
        device.program(lambda b: None)
        too_many = [b"x"] * (device.calibration.max_batch + 1)
        with pytest.raises(DocaError):
            device.submit(too_many)


class TestRemDevice:
    def test_finds_planted_pattern(self):
        sim = Simulator()
        device = rem_device(sim, "file_executable")
        fragment = load_ruleset("file_executable").seed_fragments[0]
        results = []

        def client():
            job = yield device.submit([b"clean data", b"bad " + fragment])
            results.append(job)

        sim.process(client())
        sim.run()
        job = results[0]
        assert job.results[0] == []  # clean buffer
        assert job.results[1]  # matches in the seeded buffer

    def test_latency_includes_setup(self):
        sim = Simulator()
        device = rem_device(sim, "file_executable")
        results = []

        def client():
            job = yield device.submit([b"x" * 1500])
            results.append(job.latency_s)

        sim.process(client())
        sim.run()
        expected = device.calibration.setup_latency_s + 1500 / device.bytes_per_s
        assert results[0] == pytest.approx(expected, rel=0.01)

    def test_jobs_serialize_on_one_engine(self):
        """Two jobs submitted together: the second waits for the first —
        the serialization behind the ~50 Gb/s cap."""
        sim = Simulator()
        device = rem_device(sim, "file_executable")
        latencies = []

        def client():
            first = device.submit([b"a" * 1500])
            second = device.submit([b"b" * 1500])
            job1 = yield first
            latencies.append(job1.latency_s)
            job2 = yield second
            latencies.append(job2.latency_s)

        sim.process(client())
        sim.run()
        assert latencies[1] > 1.8 * latencies[0]

    def test_throughput_approaches_engine_rate(self):
        """Saturating the engine with full batches: processed bytes/s must
        approach the calibrated rate (the Fig. 5 cap)."""
        sim = Simulator()
        device = rem_device(sim, "file_executable")
        batch = [b"z" * 1500] * device.calibration.max_batch
        completions = []

        def client():
            for _ in range(30):
                job = yield device.submit(batch)
                completions.append(job)

        sim.process(client())
        sim.run()
        gbps = device.bytes_processed * 8 / sim.now / 1e9
        cap_gbps = device.bytes_per_s * 8 / 1e9
        # Per-job setup shaves the raw engine rate down to the sustained
        # ~50 Gb/s the paper measures (Key Observation 3).
        assert 0.75 * cap_gbps <= gbps <= cap_gbps
        assert 42.0 <= gbps <= 54.0


class TestCompressionDevice:
    def test_compresses_for_real(self):
        from repro.functions.compression import deflate

        sim = Simulator()
        device = compression_device(sim)
        payloads = []

        def client():
            job = yield device.submit([b"hello hello hello hello " * 20])
            payloads.append(job.results[0])

        sim.process(client())
        sim.run()
        restored, _ = deflate.decompress(payloads[0])
        assert restored == b"hello hello hello hello " * 20

    def test_stats_accumulate(self):
        sim = Simulator()
        device = compression_device(sim)

        def client():
            yield device.submit([b"abc" * 100])
            yield device.submit([b"def" * 100])

        sim.process(client())
        sim.run()
        assert device.jobs_completed == 2
        assert device.bytes_processed == 600
