"""Tests for the hardware specification records (Tables 1-2)."""

import pytest

from repro.hardware import (
    BLUEFIELD2,
    CLIENT,
    CONNECTX6_DX,
    HOST_CPU,
    PRICES_USD,
    SERVER,
    IsaFeature,
    PcieSpec,
    operation_mode_paths,
)


class TestBlueField2:
    def test_table1_cpu(self):
        cpu = BLUEFIELD2.cpu
        assert cpu.cores == 8
        assert cpu.frequency_hz == 2.0e9
        assert cpu.architecture == "aarch64"

    def test_table1_memory(self):
        assert BLUEFIELD2.memory.capacity_gb == 16
        assert BLUEFIELD2.memory.technology == "DDR4-3200"

    def test_table1_network(self):
        assert BLUEFIELD2.nic.port_gbps == 100.0
        assert BLUEFIELD2.nic.ports == 2
        assert BLUEFIELD2.nic.model.startswith("ConnectX-6")

    def test_table1_pcie(self):
        assert BLUEFIELD2.pcie.generation == 4
        assert BLUEFIELD2.pcie.lanes == 16

    def test_three_accelerators(self):
        assert set(BLUEFIELD2.accelerators) == {"rem", "compression", "crypto"}

    def test_snic_power_envelope(self):
        assert BLUEFIELD2.idle_power_w == 29.0
        assert BLUEFIELD2.max_active_power_w - BLUEFIELD2.idle_power_w == pytest.approx(5.4)


class TestServers:
    def test_server_cpu_is_skylake_gold(self):
        assert "6140" in SERVER.cpu.model
        assert SERVER.cpu.frequency_hz == 2.1e9  # userspace-governor pin

    def test_server_has_isa_extensions(self):
        assert IsaFeature.AES_NI in SERVER.cpu.features
        assert IsaFeature.AVX512 in SERVER.cpu.features
        assert IsaFeature.RDRAND in SERVER.cpu.features

    def test_snic_cpu_lacks_host_extensions(self):
        assert IsaFeature.AES_NI not in BLUEFIELD2.cpu.features
        assert IsaFeature.AVX512 not in BLUEFIELD2.cpu.features

    def test_client_is_broadwell(self):
        assert "E5-2640" in CLIENT.cpu.model

    def test_memory_asymmetry(self):
        """Six host channels vs one SNIC channel drives the memory-bound
        work-unit penalties."""
        assert SERVER.memory.channels == 6
        assert BLUEFIELD2.memory.channels == 1
        assert SERVER.memory.bandwidth_gbs > 4 * BLUEFIELD2.memory.bandwidth_gbs

    def test_server_idle_anchor(self):
        assert SERVER.idle_power_w == 252.0


class TestPcie:
    def test_gen3_x16_bandwidth(self):
        spec = PcieSpec(generation=3, lanes=16, transaction_latency_s=900e-9)
        assert spec.bandwidth_gbs == pytest.approx(15.76, rel=0.01)

    def test_gen4_doubles_gen3(self):
        gen3 = PcieSpec(3, 16, 1e-9).bandwidth_gbs
        gen4 = PcieSpec(4, 16, 1e-9).bandwidth_gbs
        assert gen4 == pytest.approx(2 * gen3, rel=0.01)


class TestMisc:
    def test_prices_match_paper(self):
        assert PRICES_USD["server_without_nic"] == 6287.0
        assert PRICES_USD["snic_bluefield2"] == 1817.0
        assert PRICES_USD["nic_connectx6dx"] == 1478.0

    def test_operation_modes(self):
        paths = operation_mode_paths()
        assert "snic_cpu" in paths["on-path"]
        assert "snic_cpu" not in paths["off-path"]

    def test_nic_spec(self):
        assert CONNECTX6_DX.port_gbps == 100.0
