"""Tests for the memory-hierarchy model and its calibration checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import HOST, SNIC_CPU
from repro.hardware.memmodel import (
    AccessPattern,
    host_hierarchy,
    lookup_cost_ratio,
    snic_hierarchy,
)


class TestAccessPattern:
    def test_validation(self):
        with pytest.raises(ValueError):
            AccessPattern(0)
        with pytest.raises(ValueError):
            AccessPattern(100, randomness=1.5)


class TestHierarchy:
    def test_hit_rates_sum_to_one(self):
        hierarchy = host_hierarchy()
        rates = hierarchy.hit_rates(AccessPattern(1 << 22))
        assert sum(p for _, p in rates) == pytest.approx(1.0)

    def test_tiny_working_set_is_l1_resident(self):
        hierarchy = host_hierarchy()
        rates = dict(hierarchy.hit_rates(AccessPattern(8 * 1024)))
        assert rates["l1"] == pytest.approx(1.0)

    def test_latency_grows_with_working_set(self):
        hierarchy = snic_hierarchy()
        small = hierarchy.access_cycles(AccessPattern(16 * 1024))
        medium = hierarchy.access_cycles(AccessPattern(2 << 20))
        large = hierarchy.access_cycles(AccessPattern(256 << 20))
        assert small < medium < large

    def test_sequential_cheaper_than_random(self):
        hierarchy = host_hierarchy()
        big = 128 << 20
        random = hierarchy.access_cycles(AccessPattern(big, randomness=1.0))
        sequential = hierarchy.access_cycles(AccessPattern(big, randomness=0.1))
        assert sequential < random

    def test_independent_accesses_overlap(self):
        hierarchy = host_hierarchy()
        big = 128 << 20
        dependent = hierarchy.access_cycles(AccessPattern(big, dependent=True))
        parallel = hierarchy.access_cycles(AccessPattern(big, dependent=False))
        assert parallel < dependent

    def test_dram_bound_latencies_physical(self):
        """DRAM-bound dependent chains cost ~ the DRAM latency."""
        cycles = host_hierarchy().access_cycles(AccessPattern(1 << 30))
        assert 120 <= cycles <= 220  # ~85 ns at 2.1 GHz plus cache fractions

    @given(st.integers(min_value=1024, max_value=1 << 30))
    @settings(max_examples=40, deadline=None)
    def test_snic_never_faster_in_seconds(self, working_set):
        """The A72 hierarchy never beats the Xeon's on random access."""
        assert lookup_cost_ratio(working_set) >= 0.99


class TestCalibrationConsistency:
    """The hand-calibrated work-unit costs must agree with the derived
    hierarchy model within a factor of ~2 — the model validates the
    calibration, the calibration pins the absolute scale."""

    def test_nat_cold_lookup_ratio(self):
        """1M NAT entries ~ 64 MB of table: calibrated cold-lookup ratio
        vs. model-derived ratio."""
        calibrated = (SNIC_CPU.work_cycles["nat_lookup_cold"] / SNIC_CPU.frequency_hz) / (
            HOST.work_cycles["nat_lookup_cold"] / HOST.frequency_hz
        )
        derived = lookup_cost_ratio(64 << 20)
        assert calibrated == pytest.approx(derived, rel=1.0)

    def test_warm_lookup_ratio(self):
        """10K entries (~640 KB) sit in L2/LLC."""
        calibrated = (SNIC_CPU.work_cycles["nat_lookup"] / SNIC_CPU.frequency_hz) / (
            HOST.work_cycles["nat_lookup"] / HOST.frequency_hz
        )
        derived = lookup_cost_ratio(640 << 10)
        assert calibrated == pytest.approx(derived, rel=1.0)

    def test_mem_random_access_ratio(self):
        calibrated = (SNIC_CPU.work_cycles["mem_random_access"] / SNIC_CPU.frequency_hz) / (
            HOST.work_cycles["mem_random_access"] / HOST.frequency_hz
        )
        derived = lookup_cost_ratio(8 << 20)
        assert calibrated == pytest.approx(derived, rel=1.0)

    def test_streaming_bandwidth_gap(self):
        """mem_stream_byte's host:snic ratio tracks the channel count gap."""
        host_stream = host_hierarchy().streaming_cycles_per_byte()
        snic_stream = snic_hierarchy().streaming_cycles_per_byte()
        calibrated_ratio = SNIC_CPU.work_cycles["mem_stream_byte"] / HOST.work_cycles[
            "mem_stream_byte"
        ]
        derived_ratio = snic_stream / host_stream
        assert calibrated_ratio == pytest.approx(derived_ratio, rel=1.2)
