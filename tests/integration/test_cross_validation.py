"""Cross-validation: the Lindley fast path against the event kernel.

The experiments run on the vectorized queueing fast path; the substrates
run on the DES kernel.  Both claim to model the same FIFO queue — so fed
identical arrivals and service times, they must produce identical
waiting times.  This is the load-bearing equivalence behind trusting the
sweeps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Resource, Simulator
from repro.core.queueing import lindley_waits, simulate_gg1


def des_fifo_waits(gaps, services):
    """Waiting times from an event-kernel single-server FIFO."""
    sim = Simulator()
    server = Resource(sim, capacity=1)
    waits = []
    arrivals = np.cumsum(gaps)

    def job(arrival, service):
        yield sim.timeout(arrival)
        request = server.request()
        yield request
        waits.append(sim.now - arrival)
        yield sim.timeout(service)
        server.release()

    for arrival, service in zip(arrivals, services):
        sim.process(job(float(arrival), float(service)))
    sim.run()
    return np.asarray(waits)


class TestLindleyVsKernel:
    def test_deterministic_case(self):
        gaps = np.array([1.0, 0.5, 0.5, 2.0, 0.1])
        services = np.array([1.0, 1.0, 0.2, 0.1, 0.5])
        assert des_fifo_waits(gaps, services) == pytest.approx(
            lindley_waits(gaps, services)
        )

    def test_random_heavy_load(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(1.0, size=300)
        services = rng.exponential(0.9, size=300)
        assert des_fifo_waits(gaps, services) == pytest.approx(
            lindley_waits(gaps, services)
        )

    @given(st.integers(min_value=1, max_value=60), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, n, seed):
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0, size=n)
        services = rng.exponential(rng.uniform(0.2, 1.5), size=n)
        kernel = des_fifo_waits(gaps, services)
        fast = lindley_waits(gaps, services)
        assert np.allclose(kernel, fast, rtol=1e-9, atol=1e-12)


class TestShardingEquivalence:
    def test_two_shards_equal_two_kernel_queues(self):
        """RSS sharding in the fast path = independent kernel queues."""
        rng = np.random.default_rng(7)
        outcome = simulate_gg1(
            1000.0, lambda r, n: r.exponential(4e-4, size=n), 2000,
            np.random.default_rng(7),
        )
        # re-derive the same run on the kernel
        rng2 = np.random.default_rng(7)
        gaps = rng2.exponential(1e-3, size=2000)
        services = rng2.exponential(4e-4, size=2000)
        kernel_waits = des_fifo_waits(gaps, services)
        fast_sojourns = outcome.sojourns
        assert np.allclose(kernel_waits + services, fast_sojourns, rtol=1e-9)
