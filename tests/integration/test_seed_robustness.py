"""Seed robustness: the paper's conclusions must not depend on the RNG.

The anchor tests pin one seed; these verify the *qualitative* results —
who wins, by roughly what factor — reproduce across independent seeds.
"""

import pytest

from repro.core.rng import RandomStreams
from repro.experiments import run_fig4

KEYS = ("udp:64", "rdma:1024", "crypto:sha1", "rem:file_image",
        "compression:txt", "fio:read")


@pytest.fixture(scope="module")
def runs():
    results = {}
    for seed in (101, 202):
        rows = run_fig4(keys=KEYS, samples=120, n_requests=8000,
                        streams=RandomStreams(seed))
        results[seed] = {row.key: row for row in rows}
    return results


class TestSeedRobustness:
    def test_winners_stable(self, runs):
        """Every qualitative verdict (SNIC wins / loses) agrees."""
        for key in KEYS:
            verdicts = {
                seed: rows[key].throughput_ratio > 1.0
                for seed, rows in runs.items()
            }
            assert len(set(verdicts.values())) == 1, (key, verdicts)

    def test_ratios_within_tolerance(self, runs):
        """Quantitative ratios agree within 20 % across seeds."""
        seeds = sorted(runs)
        for key in KEYS:
            first = runs[seeds[0]][key].throughput_ratio
            second = runs[seeds[1]][key].throughput_ratio
            assert first == pytest.approx(second, rel=0.2), key

    def test_udp_band_holds_for_all_seeds(self, runs):
        for seed, rows in runs.items():
            assert 0.12 <= rows["udp:64"].throughput_ratio <= 0.25, seed

    def test_accel_wins_hold_for_all_seeds(self, runs):
        for seed, rows in runs.items():
            assert rows["rem:file_image"].throughput_ratio > 1.4, seed
            assert rows["compression:txt"].throughput_ratio > 2.2, seed
