"""Integration tests: the substrates composed end-to-end on the kernel.

These are the "does the system actually work as a system" tests: a
Redis-shaped KVS served over the TCP state machine, an inline IDS on a
UDP packet stream, remote storage over RDMA verbs, an accelerator
offload pipeline fed by DPDK rings, and power sensors observing a
workload — each exercising several packages together.
"""

import numpy as np
import pytest

from repro.core import Simulator, Store
from repro.functions.kvstore import KeyValueStore, encode_command
from repro.functions.regex.rulesets import load_ruleset
from repro.functions.snort import IntrusionDetector, PacketMeta
from repro.functions.storage import NvmeOfTarget, RamDisk
from repro.netstack import (
    DuplexChannel,
    PollModePort,
    QueuePair,
    RdmaNic,
    TcpEndpoint,
    UdpEndpoint,
    ip,
    run_poll_loop,
)
from repro.power import BmcSensor, ComponentLoad, ServerPowerModel


class TestRedisOverTcp:
    def test_ycsb_style_session(self):
        """SET + GET round trips over the real TCP state machine."""
        sim = Simulator()
        channel = DuplexChannel(sim)
        client = TcpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
        server = TcpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
        channel.forward.attach(server.deliver)
        channel.backward.attach(client.deliver)

        store = KeyValueStore()
        listener = server.listen(6379)
        responses = []

        def server_proc():
            connection = yield listener.accept()
            yield connection.established()
            for _ in range(3):
                header = yield connection.recv(4)
                length = int(header)
                command = yield connection.recv(length)
                response, _ = store.execute(command)
                connection.send(response)

        def client_proc():
            connection = client.connect(40000, ip(10, 0, 0, 2), 6379)
            yield connection.established()
            for command in (
                encode_command(b"SET", b"user1", b"alice"),
                encode_command(b"GET", b"user1"),
                encode_command(b"GET", b"ghost"),
            ):
                connection.send(b"%04d" % len(command) + command)
                # replies are small; read what each command produces
            responses.append((yield connection.recv(5)))   # +OK\r\n
            responses.append((yield connection.recv(11)))  # $5\r\nalice\r\n
            responses.append((yield connection.recv(5)))   # $-1\r\n

        sim.process(server_proc())
        sim.process(client_proc())
        sim.run(until=5.0)
        assert responses == [b"+OK\r\n", b"$5\r\nalice\r\n", b"$-1\r\n"]
        assert store.stats.sets == 1
        assert store.stats.hits == 1
        assert store.stats.misses == 1


class TestSnortInline:
    def test_ids_alerts_on_udp_stream(self):
        """iperf-style UDP stream through the IDS; seeded packets alert."""
        sim = Simulator()
        channel = DuplexChannel(sim)
        client = UdpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
        server = UdpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
        channel.forward.attach(server.deliver)
        channel.backward.attach(client.deliver)

        detector = IntrusionDetector.from_named_ruleset("file_executable")
        fragment = load_ruleset("file_executable").seed_fragments[0]
        socket = server.bind(53)
        inspected = []

        def ids_proc():
            for _ in range(20):
                packet = yield socket.recv()
                alerts, _ = detector.inspect(
                    PacketMeta("udp", packet.dst_port, packet.payload)
                )
                inspected.append(len(alerts))

        def sender_proc():
            client_socket = client.bind(9999)
            for index in range(20):
                payload = b"benign traffic %03d" % index
                if index in (5, 13):
                    payload += fragment
                client_socket.sendto(payload, ip(10, 0, 0, 2), 53)
                yield sim.timeout(1e-5)

        sim.process(ids_proc())
        sim.process(sender_proc())
        sim.run(until=1.0)
        assert len(inspected) == 20
        assert sum(1 for n in inspected if n > 0) == 2
        assert detector.stats.alerts >= 2


class TestNvmeOfOverRdma:
    def test_remote_block_read_write(self):
        """fio's data path: NVMe commands via SEND/RECV, bulk data via
        one-sided READ from the target's memory region."""
        sim = Simulator()
        initiator_nic = RdmaNic(sim, 1, local_bus_latency_s=900e-9)
        target_nic = RdmaNic(sim, 2, local_bus_latency_s=300e-9)
        qp_initiator = QueuePair(sim, initiator_nic, target_nic)
        qp_target = QueuePair(sim, target_nic, initiator_nic)
        qp_initiator.connect(qp_target)

        target = NvmeOfTarget()
        disk = RamDisk(1 << 20)
        target.add_namespace(1, disk)
        payload = bytes(range(256)) * 16
        disk.write(3, payload)
        # expose the block as an RDMA-readable staging region
        region = target_nic.register_memory(disk.read(3, 1))

        results = {}

        def initiator():
            completion = yield qp_initiator.read(region.key, 0, 4096)
            results["data"] = completion.data
            results["latency"] = sim.now

        sim.process(initiator())
        sim.run()
        assert results["data"] == payload
        assert 0 < results["latency"] < 1e-3


class TestAcceleratorPipeline:
    def test_dpdk_staged_batch_offload(self):
        """§2.2's REM flow: DPDK rx ring -> staging buffer -> batched
        accelerator tasks, on the event kernel."""
        sim = Simulator()
        channel = DuplexChannel(sim)
        port = PollModePort(sim, channel.forward)
        channel.forward.attach(lambda p: None)
        channel.backward.attach(port.deliver)

        staging = Store(sim, capacity=256)
        completed = []

        def staging_core():
            """SNIC CPU core: polls the ring, stages buffers."""
            moved = 0
            while moved < 64:
                burst = port.rx_burst(32)
                if not burst:
                    yield sim.timeout(1e-6)
                    continue
                for packet in burst:
                    yield staging.put(packet)
                    moved += 1

        def accelerator():
            """Batch engine: drains up to 16 buffers, 2 us per task."""
            processed = 0
            while processed < 64:
                batch = []
                first = yield staging.get()
                batch.append(first)
                while len(batch) < 16 and len(staging) > 0:
                    batch.append((yield staging.get()))
                yield sim.timeout(2e-6 + 0.1e-6 * len(batch))
                completed.append(len(batch))
                processed += len(batch)

        from repro.netstack.packet import PROTO_UDP, Packet

        for index in range(64):
            channel.backward.send(
                Packet(proto=PROTO_UDP, src_ip=1, src_port=1, dst_ip=2,
                       dst_port=2, payload=b"x" * 64, packet_id=index)
            )
        sim.process(staging_core())
        sim.process(accelerator())
        sim.run(until=1.0)
        assert sum(completed) == 64
        assert max(completed) > 1  # batching actually happened


class TestPowerObservation:
    def test_bmc_sees_load_transition(self):
        """BMC sampling a server that goes busy halfway through."""
        sim = Simulator()
        model = ServerPowerModel()

        def power_fn(t):
            load = ComponentLoad(host_busy_cores=8.0 if t >= 30.0 else 0.0)
            return model.power(load)

        trace = BmcSensor(rng=np.random.default_rng(0)).attach(
            sim, power_fn, duration=60.0
        )
        sim.run(until=60.0)
        idle_readings = [w for t, w in zip(trace.times, trace.watts) if t < 30.0]
        busy_readings = [w for t, w in zip(trace.times, trace.watts) if t >= 30.0]
        assert np.mean(idle_readings) == pytest.approx(252.0, abs=2.0)
        assert np.mean(busy_readings) > 330.0
