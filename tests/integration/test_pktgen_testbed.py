"""Integration: the Pktgen application driving the packet-accurate
testbed — the appendix's experiment workflow end to end."""

import pytest

from repro.core import Simulator
from repro.testbed import SnicServer, consume_all, reply_all
from repro.workloads.pktgen_app import PktgenApp


class TestPktgenAgainstTestbed:
    def test_appendix_rem_workflow(self):
        """'set 0 rate <r>; start 0' against the on-path server: every
        generated packet traverses the eSwitch into the SNIC complex."""
        sim = Simulator()
        server = SnicServer(sim, consume_all, consume_all,
                            snic_service_s=0.5e-6)
        app = PktgenApp(sim, ports=1)
        app.attach(0, server.receive)
        app.command("set 0 size 1500")
        app.command("set 0 rate 2")  # 2% of line rate
        app.command("start 0")
        sim.run(until=2e-3)
        app.command("stop 0")
        sim.run(until=4e-3)
        assert app.stats[0].tx_packets > 100
        assert server.snic.stats.handled == app.stats[0].tx_packets
        assert server.eswitch.forwarded >= app.stats[0].tx_packets

    def test_generated_rate_matches_request(self):
        sim = Simulator()
        server = SnicServer(sim, consume_all, consume_all)
        app = PktgenApp(sim)
        app.attach(0, server.receive)
        app.command("set 0 size 1500")
        app.command("set 0 rate 5")
        app.command("start 0")
        sim.run(until=5e-3)
        app.command("stop 0")
        assert app.stats[0].tx_gbps() == pytest.approx(5.0, rel=0.15)

    def test_overload_backs_up_snic_cores(self):
        """Offered load beyond the SNIC complex's service capacity grows
        its core-pool queue — the saturation the sweeps detect."""
        sim = Simulator()
        server = SnicServer(sim, reply_all, consume_all,
                            snic_service_s=100e-6, snic_cores=1)
        app = PktgenApp(sim)
        app.attach(0, server.receive)
        app.command("set 0 size 1500")
        app.command("set 0 rate 1")  # ~8 kpps >> 10 kpps capacity... close
        app.command("start 0")
        sim.run(until=5e-3)
        app.command("stop 0")
        sim.run(until=6e-3)
        # the single 100us core cannot match ~8.2 kpps for long
        assert server.snic.cores.queue_length + server.snic.stats.handled > 0
        assert server.snic.stats.handled < app.stats[0].tx_packets
