"""Registry-driven CLI behavior: smoke round-trips, artifact validity,
byte-identity with the pre-registry verb output, and --jobs determinism."""

import json

import pytest

from repro.analysis.export import ARTIFACT_SCHEMA, validate_artifact
from repro.analysis.plots import fig4_chart, fig5_chart
from repro.cli import build_parser, main
from repro.core.rng import RandomStreams
from repro.experiments import (
    format_fig4,
    format_fig5,
    registry,
    run_fig4,
    run_fig5,
)
from repro.experiments.registry import DEFAULT_TIER, SMOKE_TIER

FAST = ["--samples", "20", "--requests", "600"]


class TestSmokeRoundTrip:
    """Every registered verb must run at smoke fidelity and emit a JSON
    artifact that validates against both the envelope schema and the
    spec's own result schema — this is exactly what CI runs."""

    @pytest.mark.parametrize("name", registry.names())
    def test_verb_smoke_json(self, name, tmp_path, capsys):
        target = tmp_path / f"{name}.json"
        code = main(FAST + [name, "--smoke", "--json", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.strip(), f"{name} printed nothing"
        doc = json.loads(target.read_text())
        errors = validate_artifact(doc, ARTIFACT_SCHEMA)
        spec = registry.get(name)
        errors += validate_artifact(doc["result"], spec.schema, "$.result")
        assert not errors, f"{name}: {errors}"
        assert doc["experiment"] == name
        assert doc["tier"] == SMOKE_TIER
        assert doc["seed"] == 2023

    def test_verb_list_matches_registry(self):
        parser = build_parser()
        verbs = {
            name
            for action in parser._subparsers._group_actions
            for name in action.choices
        }
        assert set(registry.names()) <= verbs


class TestByteIdentity:
    """`repro fig4` / `repro fig5` stdout must be byte-identical to the
    pre-registry CLI: formatter, blank line, chart — same seed, same
    fidelity, same RNG substream consumption."""

    def test_fig4_matches_direct_composition(self, capsys):
        assert main(FAST + ["fig4"]) == 0
        cli_out = capsys.readouterr().out
        rows = run_fig4(samples=20, n_requests=600,
                        streams=RandomStreams(2023))
        assert cli_out == format_fig4(rows) + "\n\n" + fig4_chart(rows) + "\n"

    def test_fig5_matches_direct_composition(self, capsys):
        assert main(FAST + ["fig5"]) == 0
        cli_out = capsys.readouterr().out
        curves = run_fig5(samples=20, n_requests=600,
                          streams=RandomStreams(2023))
        charts = "\n\n".join(
            f"[{ruleset}]\n{fig5_chart(by_platform)}"
            for ruleset, by_platform in curves.items()
        )
        assert cli_out == format_fig5(curves) + "\n\n" + charts + "\n"


class TestJobsDeterminism:
    """--jobs reaches every verb through ExperimentContext; parallel
    output must be byte-identical to serial."""

    def test_microburst_output_identical_across_jobs(self, capsys):
        assert main(FAST + ["--jobs", "1", "microburst", "--smoke"]) == 0
        serial = capsys.readouterr().out
        assert main(FAST + ["--jobs", "2", "microburst", "--smoke"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestVerdictGating:
    """A spec's verdict maps the result to the exit code at default
    fidelity only; smoke runs always exit 0 (plumbing, not science)."""

    def _register_failing(self):
        from repro.experiments.registry import Experiment, smoke_tier

        spec = Experiment(
            name="t-verdict",
            title="always-failing gate",
            runner=lambda ctx: "bad",
            formatter=str,
            tiers=smoke_tier(),
            verdict=lambda result: 3,
        )
        registry.register(spec)
        return spec

    def _unregister(self, name):
        registry._REGISTRY.pop(name, None)
        if name in registry._ORDER:
            registry._ORDER.remove(name)

    def test_verdict_binds_at_default_tier_only(self, capsys):
        self._register_failing()
        try:
            assert main(["t-verdict"]) == 3
            capsys.readouterr()
            assert main(["t-verdict", "--smoke"]) == 0
            capsys.readouterr()
        finally:
            self._unregister("t-verdict")

    def test_observations_declares_verdict(self):
        spec = registry.get("observations")
        assert spec.verdict is not None
        assert DEFAULT_TIER in spec.tiers
