"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro import cli
from repro.cli import build_parser, main
from repro.core import trace


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            name
            for action in parser._subparsers._group_actions
            for name in action.choices
        }
        assert {"fig4", "fig5", "fig6", "fig7", "table4", "table5",
                "observations", "tables", "strategy1", "modes",
                "sensitivity", "microburst", "report", "faults",
                "trace"} <= actions

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_flags(self):
        args = build_parser().parse_args(["--samples", "10", "fig7"])
        assert args.samples == 10

    def test_faults_flags(self):
        args = build_parser().parse_args(["faults", "--smoke"])
        assert args.command == "faults"
        assert args.smoke

    def test_jobs_flag(self):
        args = build_parser().parse_args(["--jobs", "4", "fig4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["fig4"]).jobs == 1

    def test_cache_dir_flag(self):
        args = build_parser().parse_args(["--cache-dir", "/tmp/c", "fig4"])
        assert args.cache_dir == "/tmp/c"

    def test_trace_flags_before_or_after_verb(self):
        before = build_parser().parse_args(["--trace-dir", "/tmp/t", "fig4"])
        assert before.trace_dir == "/tmp/t"
        after = build_parser().parse_args(["fig4", "--trace-dir", "/tmp/t"])
        assert after.trace_dir == "/tmp/t"
        assert build_parser().parse_args(["fig4"]).trace_dir is None
        assert build_parser().parse_args(["fig4", "--trace"]).trace

    def test_trace_verb_flags(self):
        args = build_parser().parse_args(["trace", "fig4", "--smoke"])
        assert args.command == "trace"
        assert args.experiment == "fig4"
        assert args.smoke

    def test_trace_verb_accepts_any_registered_experiment(self):
        # the trace verb is a registry walk: every registered verb traces
        args = build_parser().parse_args(["trace", "table4"])
        assert args.experiment == "table4"

    def test_trace_verb_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "not-an-experiment"])

    def test_log_level_flag(self):
        args = build_parser().parse_args(["--log-level", "debug", "fig7"])
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "loud", "fig7"])

    def test_metrics_interval_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--metrics-interval", "0", "fig7"])
        capsys.readouterr()

    def test_every_verb_help_exits_zero(self, capsys):
        parser = build_parser()
        verbs = {
            name
            for action in parser._subparsers._group_actions
            for name in action.choices
        }
        for verb in sorted(verbs):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args([verb, "--help"])
            assert excinfo.value.code == 0, f"{verb} --help failed"
            assert capsys.readouterr().out  # usage text was printed


class TestCsvValidation:
    """--csv must either work or fail loudly — never be silently ignored."""

    @pytest.mark.parametrize("verb", ["fig7", "report", "table4",
                                      "observations", "faults"])
    def test_csv_rejected_for_unsupported_verbs(self, verb, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--csv", "out.csv", verb])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--csv is not supported" in err
        assert verb in err

    def test_csv_accepted_for_fig4(self, tmp_path, capsys):
        target = tmp_path / "fig4.csv"
        code = main(["--samples", "20", "--requests", "600",
                     "--csv", str(target), "fig4"])
        assert code == 0
        capsys.readouterr()
        assert target.exists()
        assert target.read_text().count("\n") > 1


class TestInstrumentFooter:
    def test_footer_reports_probes_and_cache(self, capsys):
        assert main(["--samples", "20", "--requests", "600", "fig4"]) == 0
        err = capsys.readouterr().err
        assert "probes" in err
        assert "cache" in err and "hit" in err and "miss" in err

    def test_cache_dir_persists_across_invocations(self, tmp_path, capsys):
        argv = ["--samples", "20", "--requests", "600",
                "--cache-dir", str(tmp_path), "fig4"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        # Same artifact, but the second run probed nothing.
        assert second.out == first.out
        assert "probes: 0 simulated" in second.err


class TestCheapCommands:
    """Run the fast subcommands end to end."""

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "avg 0.76" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_modes(self, capsys):
        assert main(["modes"]) == 0
        assert "on-path tax" in capsys.readouterr().out

    def test_table4_small(self, capsys):
        assert main(["--samples", "60", "--requests", "3000", "table4"]) == 0
        assert "Throughput" in capsys.readouterr().out

    def test_faults_smoke(self, capsys):
        assert main(["faults", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "snic-outage" in out
        assert "avail" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(["--samples", "40", "--requests", "3000",
                     "report", "-o", str(target)])
        assert code == 0
        text = target.read_text()
        assert "paper vs. measured" in text
        assert "| Fig4 |" in text
        assert "Latency attribution" in text


class TestTraceVerb:
    def test_trace_fig4_smoke_writes_valid_files(self, tmp_path, capsys):
        code = main(["--samples", "20", "--requests", "600",
                     "trace", "fig4", "--smoke", "--trace-dir",
                     str(tmp_path)])
        assert code == 0
        captured = capsys.readouterr()
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        assert jsonl.exists() and chrome.exists()
        lines = jsonl.read_text().splitlines()
        assert lines
        for line in lines[:50]:
            event = json.loads(line)
            assert {"name", "cat", "ph", "track", "ts"} <= set(event)
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases and ("X" in phases or "i" in phases)
        assert "trace" in captured.err  # footer shows trace stats
        # Recorder does not leak into the next invocation.
        assert trace.recorder() is None

    def test_trace_flag_on_existing_verb(self, tmp_path, capsys):
        code = main(["--samples", "60", "--requests", "3000",
                     "--trace-dir", str(tmp_path), "table4"])
        assert code == 0
        capsys.readouterr()
        assert (tmp_path / "trace.jsonl").exists()

    def test_untraced_run_leaves_recorder_off(self, capsys):
        assert main(["fig7"]) == 0
        capsys.readouterr()
        assert not trace.enabled()


class TestFooterOnFailure:
    def test_footer_and_trace_survive_a_failing_verb(self, tmp_path,
                                                     monkeypatch, capsys):
        def boom(args, streams, executor):
            raise RuntimeError("verb exploded mid-study")

        monkeypatch.setattr(cli, "_dispatch", boom)
        with pytest.raises(RuntimeError, match="verb exploded"):
            main(["--trace-dir", str(tmp_path), "fig7"])
        err = capsys.readouterr().err
        assert "probes: 0 simulated" in err  # the footer still printed
        assert (tmp_path / "trace.jsonl").exists()
        assert not trace.enabled()  # and the recorder was torn down


class TestLogging:
    def test_log_level_configures_repro_hierarchy(self, capsys):
        assert main(["--log-level", "info", "--samples", "20",
                     "--requests", "600", "fig4"]) == 0
        err = capsys.readouterr().err
        assert "INFO repro.fig4" in err
        assert "measuring" in err

    def test_default_level_suppresses_info(self, capsys):
        assert main(["--samples", "20", "--requests", "600", "fig4"]) == 0
        err = capsys.readouterr().err
        assert "INFO repro.fig4" not in err
        assert logging.getLogger("repro").level == logging.WARNING
