"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            name
            for action in parser._subparsers._group_actions
            for name in action.choices
        }
        assert {"fig4", "fig5", "fig6", "fig7", "table4", "table5",
                "observations", "tables", "strategy1", "modes",
                "sensitivity", "microburst", "report", "faults"} <= actions

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_flags(self):
        args = build_parser().parse_args(["--samples", "10", "fig7"])
        assert args.samples == 10

    def test_faults_flags(self):
        args = build_parser().parse_args(["faults", "--smoke"])
        assert args.command == "faults"
        assert args.smoke

    def test_every_verb_help_exits_zero(self, capsys):
        parser = build_parser()
        verbs = {
            name
            for action in parser._subparsers._group_actions
            for name in action.choices
        }
        for verb in sorted(verbs):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args([verb, "--help"])
            assert excinfo.value.code == 0, f"{verb} --help failed"
            assert capsys.readouterr().out  # usage text was printed


class TestCheapCommands:
    """Run the fast subcommands end to end."""

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "avg 0.76" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_modes(self, capsys):
        assert main(["modes"]) == 0
        assert "on-path tax" in capsys.readouterr().out

    def test_table4_small(self, capsys):
        assert main(["--samples", "60", "--requests", "3000", "table4"]) == 0
        assert "Throughput" in capsys.readouterr().out

    def test_faults_smoke(self, capsys):
        assert main(["faults", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "snic-outage" in out
        assert "avail" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(["--samples", "40", "--requests", "3000",
                     "report", "-o", str(target)])
        assert code == 0
        text = target.read_text()
        assert "paper vs. measured" in text
        assert "| Fig4 |" in text
