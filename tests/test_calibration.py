"""Tests for the calibration tables: completeness and internal consistency."""

import numpy as np
import pytest

from repro.calibration import (
    ACCELERATORS,
    HOST,
    PLATFORMS,
    POWER,
    SNIC_CPU,
    base_rtt_sampler,
    lognormal_params,
)
from repro.core.work import WorkUnits


class TestPlatformTables:
    def test_both_platforms_registered(self):
        assert set(PLATFORMS) == {"host", "snic-cpu"}

    def test_work_kind_tables_match(self):
        """Every work kind priced on one platform is priced on the other —
        otherwise some function profile would crash on one side only."""
        assert set(HOST.work_cycles) == set(SNIC_CPU.work_cycles)

    def test_stack_tables_match(self):
        assert set(HOST.stacks) == set(SNIC_CPU.stacks) == {"udp", "tcp", "dpdk", "rdma"}

    def test_snic_generic_work_is_slower(self):
        """The A72 should never beat the Xeon per cycle on generic work
        kinds (ISA-neutral ones)."""
        for kind in ("instr", "hash_probe", "mem_random_access", "dfa_byte",
                     "aes_block", "sha1_block"):
            host_s = HOST.work_cycles[kind] / HOST.frequency_hz
            snic_s = SNIC_CPU.work_cycles[kind] / SNIC_CPU.frequency_hz
            assert snic_s > host_s, kind

    def test_kernel_stacks_cost_more_on_snic(self):
        for stack in ("udp", "tcp"):
            assert SNIC_CPU.stack_seconds(stack, 64) > 2 * HOST.stack_seconds(stack, 64)

    def test_rdma_cheaper_on_snic(self):
        """The SNIC CPU sits next to the NIC (§4)."""
        assert SNIC_CPU.stacks["rdma"].base_rtt_mean_s < HOST.stacks["rdma"].base_rtt_mean_s

    def test_work_seconds_prices_units(self):
        units = WorkUnits({"instr": 2.1e9})
        assert HOST.work_seconds(units) == pytest.approx(1.0)

    def test_work_seconds_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            HOST.work_seconds(WorkUnits({"quantum_op": 1}))

    def test_parallel_efficiency_fold(self):
        """stack_seconds folds the serialization share into service time."""
        cost = SNIC_CPU.stacks["udp"]
        raw = (cost.per_packet_cycles + 64 * cost.per_byte_cycles) / SNIC_CPU.frequency_hz
        assert SNIC_CPU.stack_seconds("udp", 64) == pytest.approx(
            raw / cost.parallel_efficiency
        )


class TestAccelerators:
    def test_engines_present(self):
        assert set(ACCELERATORS) == {"rem", "compression", "crypto"}

    def test_rem_cap_below_line_rate(self):
        """Key Observation 3: no engine rate reaches 100 Gb/s payload."""
        rem_gbps = ACCELERATORS["rem"].bytes_per_s["default"] * 8 / 1e9
        assert rem_gbps < 80.0

    def test_crypto_modes(self):
        crypto = ACCELERATORS["crypto"]
        assert {"aes", "sha1"} <= set(crypto.bytes_per_s)
        assert "rsa2048" in crypto.ops_per_s

    def test_batching_parameters_positive(self):
        for engine in ACCELERATORS.values():
            assert engine.max_batch >= 1
            assert engine.setup_latency_s > 0
            assert engine.staging_cores >= 1


class TestPowerCalibration:
    def test_paper_idle_anchors(self):
        assert POWER.server_idle_w == 252.0
        assert POWER.snic_idle_w == 29.0

    def test_snic_active_ceiling(self):
        """§4: SNIC active power tops out near 5.4 W."""
        ceiling = (
            8 * POWER.snic_core_active_w
            + max(POWER.snic_accel_engaged_w.values())
            + max(POWER.snic_accel_active_w.values())
        )
        assert ceiling <= 9.0

    def test_host_active_ceiling(self):
        """§4: server active power tops out near 150.6 W."""
        ceiling = 8 * POWER.host_core_active_w + POWER.host_platform_active_w
        assert 80.0 <= ceiling <= 151.0


class TestLognormal:
    def test_params_reproduce_moments(self):
        mu, sigma = lognormal_params(50e-6, 150e-6)
        rng = np.random.default_rng(0)
        draws = rng.lognormal(mu, sigma, size=400_000)
        assert np.mean(draws) == pytest.approx(50e-6, rel=0.02)
        assert np.percentile(draws, 99) == pytest.approx(150e-6, rel=0.05)

    def test_rejects_p99_below_mean(self):
        with pytest.raises(ValueError):
            lognormal_params(1.0, 0.5)

    def test_sampler_positive(self):
        sampler = base_rtt_sampler(HOST.stacks["udp"])
        draws = sampler(np.random.default_rng(1), 1000)
        assert (draws > 0).all()
