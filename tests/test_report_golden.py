"""The committed EXPERIMENTS.md is the report's exact output.

``python -m repro report`` at default fidelity must reproduce the
committed file byte for byte.  A mismatch means either a model change
drifted a measured number without review, or a reviewed change shipped
without regenerating EXPERIMENTS.md — both are bugs.  The default
engine is hybrid, so this also pins the validated analytic fast path:
an untrusted model sneaking a prediction into an anchor row shows up
here as a byte diff.
"""

from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_experiments_md_is_the_report_output(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["report", "-o", str(target)]) == 0
    capsys.readouterr()
    committed = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    assert target.read_text() == committed, (
        "EXPERIMENTS.md is stale — regenerate it with "
        "`python -m repro report > EXPERIMENTS.md`"
    )
