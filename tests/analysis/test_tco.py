"""Tests for the TCO model against the paper's arithmetic."""

import pytest

from repro.analysis.tco import (
    FleetPlan,
    ServerCosts,
    compare,
    format_comparison,
)


class TestServerCosts:
    def test_paper_totals(self):
        """§5.2: SNIC server $8,098; NIC server $7,759."""
        costs = ServerCosts()
        assert costs.snic_server_usd == pytest.approx(8098.0, abs=10)  # paper quotes 8,098; 6,287+1,817=8,104
        assert costs.nic_server_usd == pytest.approx(7765.0, abs=10)


class TestFleetPlan:
    def test_energy_accounting(self):
        plan = FleetPlan(servers=1, power_per_server_w=255.0,
                         server_cost_usd=8098.0)
        # 255 W x 5 y x 8760 h = 11,169 kWh — Table 5's "Power use" row
        assert plan.energy_per_server_kwh == pytest.approx(11_169, rel=0.001)
        # at $0.162/kWh -> ~$1,809 — Table 5's "Power cost" row
        assert plan.power_cost_per_server_usd == pytest.approx(1809.4, abs=2.0)

    def test_tco_scales_with_servers(self):
        one = FleetPlan(1, 255.0, 8098.0).tco_usd
        ten = FleetPlan(10, 255.0, 8098.0).tco_usd
        assert ten == pytest.approx(10 * one)

    def test_paper_table5_compress_row(self):
        """Table 5 Compress: 10 SNIC servers at 255 W -> ~$99,074."""
        plan = FleetPlan(10, 255.0, ServerCosts().snic_server_usd)
        assert plan.tco_usd == pytest.approx(99_074, rel=0.005)


class TestCompare:
    def test_equal_fleets_for_comparable_throughput(self):
        comparison = compare("fio", 257.0, 343.0, throughput_ratio_snic_over_host=1.02)
        assert comparison.nic_fleet.servers == comparison.snic_fleet.servers == 10

    def test_fleet_grows_with_throughput_ratio(self):
        comparison = compare("Compress", 255.0, 269.0,
                             throughput_ratio_snic_over_host=3.5)
        assert comparison.nic_fleet.servers == 35

    def test_paper_compress_savings(self):
        """Table 5: 70.7 % savings with the paper's own numbers."""
        comparison = compare("Compress", 255.0, 269.0,
                             throughput_ratio_snic_over_host=3.5)
        assert comparison.savings_fraction == pytest.approx(0.707, abs=0.01)

    def test_paper_fio_savings(self):
        """Table 5: fio 2.7 % with the paper's power numbers (257/343 W)."""
        comparison = compare("fio", 257.0, 343.0, throughput_ratio_snic_over_host=1.0)
        assert comparison.savings_fraction == pytest.approx(0.027, abs=0.006)

    def test_paper_rem_loss(self):
        """Table 5: REM -2.5 % with 255 W vs 268 W."""
        comparison = compare("REM", 255.0, 268.0, throughput_ratio_snic_over_host=1.0)
        assert comparison.savings_fraction == pytest.approx(-0.025, abs=0.006)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            compare("x", 255.0, 269.0, throughput_ratio_snic_over_host=0.0)

    def test_formatting(self):
        comparison = compare("fio", 257.0, 343.0, 1.0)
        text = format_comparison([comparison])
        assert "fio" in text and "savings" in text
