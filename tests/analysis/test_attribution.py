"""Latency attribution: components must sum to what we report.

The acceptance bar for the attribution table is that the per-component
means sum to the reported mean sojourn within 1 % at every operating
point; the fast paths actually achieve exact (float-add) equality
because components are accumulated alongside the sojourns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.attribution import (
    format_attribution,
    format_attribution_markdown,
    row_from_metrics,
    rows_from_fig4,
)
from repro.core.queueing import (
    COMP_BATCH_WAIT,
    COMP_QUEUE_WAIT,
    COMP_SERVICE,
    COMP_STACK_RTT,
    COMPONENTS,
    attribute_outcome,
    outcome_to_metrics,
    simulate_batch_server,
    simulate_gg1,
)
from repro.core.rng import RandomStreams
from repro.experiments.fig4 import run_fig4


def _sampler(rng, n):
    return np.full(n, 2e-6)


class TestComponentInvariant:
    def test_gg1_components_sum_to_sojourns(self):
        rng = np.random.default_rng(3)
        outcome = simulate_gg1(200_000.0, _sampler, 4000, rng)
        assert set(outcome.components) == {COMP_QUEUE_WAIT, COMP_SERVICE}
        assert outcome.component_residual() < 1e-12

    def test_gg1_with_queue_limit_keeps_invariant(self):
        rng = np.random.default_rng(4)
        outcome = simulate_gg1(600_000.0, _sampler, 4000, rng,
                               queue_limit=20e-6)
        assert outcome.dropped > 0
        assert outcome.component_residual() < 1e-12

    def test_batch_server_components_sum_to_sojourns(self):
        rng = np.random.default_rng(5)
        outcome = simulate_batch_server(
            300_000.0, 4000, rng, batch_size=32, batch_timeout=15e-6,
            setup_time=4e-6, per_item_time=0.5e-6,
        )
        assert set(outcome.components) == {COMP_BATCH_WAIT, COMP_SERVICE}
        assert outcome.component_residual() < 1e-9

    def test_add_component_extends_both_sides(self):
        rng = np.random.default_rng(6)
        outcome = simulate_gg1(100_000.0, _sampler, 500, rng)
        before = outcome.sojourns.copy()
        outcome.add_component(COMP_STACK_RTT, np.full(500, 3e-6))
        assert np.allclose(outcome.sojourns, before + 3e-6)
        assert outcome.component_residual() < 1e-12


class TestAttribution:
    def test_component_means_sum_to_latency_mean(self):
        rng = np.random.default_rng(7)
        outcome = simulate_gg1(400_000.0, _sampler, 6000, rng)
        outcome.add_component(COMP_STACK_RTT, np.full(6000, 5e-6))
        metrics = outcome_to_metrics(outcome, offered_rate=400_000.0,
                                     bytes_per_request=64)
        attr = metrics.extra
        component_sum = sum(
            attr.get(f"attr.{name}_mean_s", 0.0) for name in COMPONENTS
        )
        assert attr["attr.sojourn_mean_s"] == pytest.approx(
            metrics.latency_mean, rel=1e-12)
        assert component_sum == pytest.approx(metrics.latency_mean, rel=1e-9)

    def test_tail_means_sum_to_tail_mean(self):
        rng = np.random.default_rng(8)
        outcome = simulate_batch_server(
            300_000.0, 6000, rng, batch_size=32, batch_timeout=15e-6,
            setup_time=4e-6, per_item_time=0.5e-6,
        )
        attr = attribute_outcome(outcome)
        tail_sum = sum(
            value for key, value in attr.items()
            if key.endswith("_tail_s")
        )
        assert tail_sum == pytest.approx(attr["attr.tail_mean_s"], rel=1e-9)
        assert attr["attr.tail_mean_s"] >= attr["attr.sojourn_mean_s"]

    def test_empty_outcome_yields_no_attribution(self):
        rng = np.random.default_rng(9)
        outcome = simulate_gg1(100.0, _sampler, 1, rng)
        outcome.sojourns = outcome.sojourns[:0]
        outcome.components = {}
        assert attribute_outcome(outcome) == {}


class TestAttributionReport:
    @pytest.fixture(scope="class")
    def fig4_rows(self):
        return run_fig4(keys=("udp:64", "rem:file_image"), samples=20,
                        n_requests=600, streams=RandomStreams(11))

    def test_every_operating_point_sums_within_one_percent(self, fig4_rows):
        rows = rows_from_fig4(fig4_rows)
        assert len(rows) == 4  # two functions x two platforms
        for row in rows:
            assert row.mean_components, row.function
            assert row.residual_fraction <= 0.01, (
                f"{row.function}@{row.platform}: "
                f"{row.component_sum_s} vs {row.mean_s}")

    def test_accelerator_rows_expose_batch_wait(self, fig4_rows):
        rows = rows_from_fig4(fig4_rows)
        accel = next(r for r in rows if r.platform == "snic-accel")
        assert accel.mean_components.get("batch_wait", 0.0) > 0.0
        cpu = next(r for r in rows if r.platform == "host")
        assert cpu.mean_components.get("queue_wait", 0.0) > 0.0

    def test_renderings_cover_every_row(self, fig4_rows):
        rows = rows_from_fig4(fig4_rows)
        markdown = format_attribution_markdown(rows)
        text = format_attribution(rows)
        assert markdown.count("\n") == len(rows) + 1  # header + separator
        for row in rows:
            assert row.function in markdown
            assert row.function in text
        assert "| ok |" in markdown  # the sum check passed somewhere
