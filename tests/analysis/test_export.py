"""Tests for CSV result export."""

import csv
import io

import pytest

from repro.analysis.export import (
    write_fig4_csv,
    write_fig5_csv,
    write_fig6_csv,
    write_table5_csv,
)
from repro.analysis.tco import compare
from repro.core.rng import RandomStreams
from repro.experiments import rows_from_fig4, run_fig4, run_fig5


@pytest.fixture(scope="module")
def fig4_rows():
    return run_fig4(keys=("udp:64", "crypto:sha1"), samples=40,
                    n_requests=3000, streams=RandomStreams(5))


class TestFig4Export:
    def test_row_count(self, fig4_rows):
        buffer = io.StringIO()
        assert write_fig4_csv(buffer, fig4_rows) == 2

    def test_parseable_and_consistent(self, fig4_rows):
        buffer = io.StringIO()
        write_fig4_csv(buffer, fig4_rows)
        buffer.seek(0)
        parsed = list(csv.DictReader(buffer))
        assert parsed[0]["key"] == "udp:64"
        ratio = float(parsed[0]["throughput_ratio"])
        recomputed = float(parsed[0]["snic_throughput_rps"]) / float(
            parsed[0]["host_throughput_rps"]
        )
        assert ratio == pytest.approx(recomputed, rel=1e-3)


class TestFig5Export:
    def test_points_flattened(self):
        figure = run_fig5(rulesets=("file_executable",), rates_gbps=(10, 30),
                          samples=40, n_requests=3000, streams=RandomStreams(5))
        buffer = io.StringIO()
        count = write_fig5_csv(buffer, figure)
        assert count == 2 * 4  # 2 rates x (3 host-core series + accel)
        buffer.seek(0)
        parsed = list(csv.DictReader(buffer))
        assert {row["series"] for row in parsed} == {
            "host-1c", "host-4c", "host-8c", "snic-accel"
        }


class TestFig6Export:
    def test_fields(self, fig4_rows):
        buffer = io.StringIO()
        write_fig6_csv(buffer, rows_from_fig4(fig4_rows))
        buffer.seek(0)
        parsed = list(csv.DictReader(buffer))
        assert float(parsed[0]["host_power_w"]) >= 252.0


class TestTable5Export:
    def test_roundtrip(self):
        comparison = compare("fio", 257.0, 343.0, 1.0)
        buffer = io.StringIO()
        assert write_table5_csv(buffer, [comparison]) == 1
        buffer.seek(0)
        parsed = list(csv.DictReader(buffer))
        assert parsed[0]["application"] == "fio"
        assert float(parsed[0]["savings_fraction"]) == pytest.approx(
            comparison.savings_fraction, abs=1e-4
        )
