"""Tests for the ASCII figure renderers."""

import pytest

from repro.analysis.plots import bar_chart, line_plot


class TestBarChart:
    def test_reference_line_present(self):
        text = bar_chart([("a", 2.0), ("b", 0.5)], title="t")
        assert "host = 1" in text
        assert text.splitlines()[0] == "t"

    def test_values_printed(self):
        text = bar_chart([("redis", 0.14), ("compress", 3.26)])
        assert "0.14" in text and "3.26" in text

    def test_bars_extend_opposite_directions(self):
        """A ratio above 1 draws right of the reference; below 1, left."""
        text = bar_chart([("up", 3.0), ("down", 0.3)], width=40)
        up_line = next(l for l in text.splitlines() if l.startswith("up"))
        down_line = next(l for l in text.splitlines() if l.startswith("down"))
        ref = up_line.index("|")
        assert "#" in up_line[ref + 1:ref + 40]
        assert "#" in down_line[:ref]

    def test_empty_items(self):
        assert bar_chart([], title="nothing") == "nothing"

    def test_nonpositive_values_handled(self):
        text = bar_chart([("zero", 0.0), ("ok", 1.5)])
        assert "ok" in text

    def test_linear_scale(self):
        text = bar_chart([("a", 2.0)], log_scale=False)
        assert "2.00" in text


class TestLinePlot:
    def test_markers_and_legend(self):
        series = {
            "host-8c": [(10.0, 10.0), (50.0, 48.0)],
            "accel": [(10.0, 10.0), (50.0, 50.0)],
        }
        text = line_plot(series, title="fig5")
        assert "o=host-8c" in text
        assert "x=accel" in text
        assert "o" in text

    def test_axis_bounds_printed(self):
        text = line_plot({"s": [(0.0, 1.0), (100.0, 2.0)]}, x_label="Gb/s")
        assert "100" in text
        assert "Gb/s" in text

    def test_empty(self):
        assert line_plot({}, title="t") == "t"

    def test_single_point(self):
        text = line_plot({"s": [(5.0, 5.0)]})
        assert "o" in text


class TestFigureAdapters:
    def test_fig4_chart_from_rows(self):
        from repro.analysis.plots import fig4_chart
        from repro.core.rng import RandomStreams
        from repro.experiments import run_fig4

        rows = run_fig4(keys=("udp:64", "crypto:sha1"), samples=40,
                        n_requests=3000, streams=RandomStreams(1))
        text = fig4_chart(rows)
        assert "UDP 64 B" in text
        assert "Fig. 4" in text

    def test_fig5_chart_from_curves(self):
        from repro.analysis.plots import fig5_chart
        from repro.core.rng import RandomStreams
        from repro.experiments import run_fig5

        curves = run_fig5(rulesets=("file_executable",),
                          rates_gbps=(10, 30, 50), samples=40,
                          n_requests=3000, streams=RandomStreams(1))
        text = fig5_chart(curves["file_executable"])
        assert "host-8c" in text
