"""Tests for fabric ports, RED/ECN marking, and leaf-spine routing."""

import numpy as np
import pytest

from repro.cluster import LeafSpineFabric, RedConfig, TopologySpec
from repro.cluster.fabric import FabricPort, flow_spine
from repro.core.engine import Simulator
from repro.netstack.packet import PROTO_TCP, Packet, ip


def make_packet(src=0, dst=1, sport=40_000, dport=5001, nbytes=1400,
                ect=True):
    packet = Packet(
        src_ip=ip(10, 0, src, 10), dst_ip=ip(10, 0, dst, 10),
        src_port=sport, dst_port=dport, proto=PROTO_TCP,
        payload=bytes(nbytes),
    )
    packet.ecn_capable = ect
    return packet


class TestRedConfig:
    def test_below_min_passes(self):
        red = RedConfig(min_bytes=1000, max_bytes=3000)
        assert red.decision(500, np.random.default_rng(0)) == "pass"

    def test_above_max_always_marks(self):
        red = RedConfig(min_bytes=1000, max_bytes=3000)
        for seed in range(5):
            assert red.decision(3000, np.random.default_rng(seed)) == "mark"

    def test_linear_region_marks_probabilistically(self):
        red = RedConfig(min_bytes=0, max_bytes=10_000, max_p=1.0)
        rng = np.random.default_rng(1)
        marks = sum(red.decision(5_000, rng) == "mark" for _ in range(2000))
        assert 0.4 < marks / 2000 < 0.6


class TestFabricPort:
    def test_marks_ect_packets_at_saturated_queue(self):
        sim = Simulator()
        port = FabricPort(sim, "p", gbps=1.0, propagation_s=0.0,
                          buffer_bytes=10**9,
                          red=RedConfig(0, 1, ecn=True),
                          rng=np.random.default_rng(0))
        got = []
        port.attach(got.append)
        first, second = make_packet(), make_packet()
        port.send(first)   # empty queue: below min_th at depth 0? min=0 -> mark region
        port.send(second)  # behind first: depth > max_th, must mark
        sim.run()
        assert second.ce
        assert port.marked >= 1
        assert len(got) == 2

    def test_drops_non_ect_instead_of_marking(self):
        sim = Simulator()
        port = FabricPort(sim, "p", gbps=1.0, propagation_s=0.0,
                          buffer_bytes=10**9,
                          red=RedConfig(0, 1, ecn=True),
                          rng=np.random.default_rng(0))
        got = []
        port.attach(got.append)
        port.send(make_packet(ect=False))
        port.send(make_packet(ect=False))
        sim.run()
        assert port.dropped >= 1
        assert len(got) < 2

    def test_tail_drop_over_buffer(self):
        sim = Simulator()
        port = FabricPort(sim, "p", gbps=0.001, propagation_s=0.0,
                          buffer_bytes=2000, red=None, rng=None)
        got = []
        port.attach(got.append)
        for _ in range(5):
            port.send(make_packet())
        sim.run()
        assert port.dropped >= 3
        assert port.enqueued + port.dropped == 5

    def test_red_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FabricPort(sim, "p", 1.0, 0.0, 1000, RedConfig(0, 1), None)


class TestFlowSpine:
    def test_deterministic_and_in_range(self):
        packet = make_packet()
        picks = {flow_spine(packet, 4) for _ in range(10)}
        assert len(picks) == 1
        assert picks.pop() in range(4)

    def test_different_flows_spread(self):
        spines = {
            flow_spine(make_packet(sport=40_000 + i), 4) for i in range(64)
        }
        assert len(spines) > 1


class TestLeafSpineFabric:
    def _build(self, topo):
        sim = Simulator()
        fabric = LeafSpineFabric(sim, topo, np.random.default_rng(0))
        inboxes = {n: [] for n in topo.node_ids()}
        for node in topo.node_ids():
            fabric.attach_node(node, inboxes[node].append)
        return sim, fabric, inboxes

    def test_intra_rack_delivery_skips_spine(self):
        topo = TopologySpec(racks=2, nodes_per_rack=2)
        sim, fabric, inboxes = self._build(topo)
        packet = make_packet()
        packet.src_ip, packet.dst_ip = topo.address_of(0), topo.address_of(1)
        fabric.egress_link(0).send(packet)
        sim.run()
        assert len(inboxes[1]) == 1
        assert all(p.enqueued == 0 for p in fabric.leaf_up.values())

    def test_inter_rack_delivery_crosses_one_spine(self):
        topo = TopologySpec(racks=2, nodes_per_rack=2, spines=2)
        sim, fabric, inboxes = self._build(topo)
        packet = make_packet()
        packet.src_ip, packet.dst_ip = topo.address_of(0), topo.address_of(3)
        fabric.egress_link(0).send(packet)
        sim.run()
        assert len(inboxes[3]) == 1
        crossed = sum(p.enqueued for p in fabric.leaf_up.values())
        assert crossed == 1

    def test_unknown_address_rejected(self):
        topo = TopologySpec(racks=1, nodes_per_rack=2, spines=1)
        sim, fabric, _ = self._build(topo)
        packet = make_packet()
        packet.dst_ip = ip(192, 168, 0, 1)
        fabric.egress_link(0).send(packet)
        with pytest.raises(ValueError):
            sim.run()

    def test_fabricless_topology_rejected(self):
        from repro.cluster import single_node_spec

        with pytest.raises(ValueError):
            LeafSpineFabric(Simulator(), single_node_spec(),
                            np.random.default_rng(0))
