"""End-to-end cluster scenarios: traffic mixes over the fabric DES."""

import pytest

from repro.cluster import MIX_KINDS, TopologySpec, expand_mix, run_scenario
from repro.core.rng import RandomStreams

TOPO = TopologySpec(racks=2, nodes_per_rack=2, spines=2)
FLOW_BYTES = 65_536


def fresh_rng(seed=11, name="test"):
    return RandomStreams(seed).fresh(name)


class TestExpandMix:
    def test_incast_targets_node_zero(self):
        flows = expand_mix("incast", TOPO, FLOW_BYTES, fresh_rng())
        assert len(flows) == TOPO.n_nodes - 1
        assert all(f.dst == 0 and f.src != 0 for f in flows)

    def test_uniform_never_self_targets(self):
        flows = expand_mix("uniform", TOPO, FLOW_BYTES, fresh_rng(),
                           flows_per_node=8)
        assert len(flows) == TOPO.n_nodes * 8
        assert all(f.src != f.dst for f in flows)

    def test_skewed_never_self_targets(self):
        flows = expand_mix("skewed", TOPO, FLOW_BYTES, fresh_rng(),
                           flows_per_node=8)
        assert all(f.src != f.dst for f in flows)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            expand_mix("broadcast", TOPO, FLOW_BYTES, fresh_rng())

    def test_mix_kinds_cover_table(self):
        assert set(MIX_KINDS) == {"incast", "uniform", "skewed"}


class TestRunScenario:
    @pytest.fixture(scope="class")
    def incast(self):
        return run_scenario(TOPO, "incast", FLOW_BYTES, fresh_rng())

    def test_all_flows_complete(self, incast):
        assert incast.flows == TOPO.n_nodes - 1
        assert incast.completed == incast.flows

    def test_fcts_positive_and_ordered(self, incast):
        assert 0 < incast.fct_mean_s <= incast.fct_p99_s <= incast.fct_max_s

    def test_goodput_positive(self, incast):
        assert incast.goodput_gbps > 0
        assert incast.makespan_s > 0

    def test_incast_bottleneck_is_receiver_downlink(self, incast):
        assert incast.hot_ports[0].name == "leaf0->node0"

    def test_deterministic_replay(self, incast):
        again = run_scenario(TOPO, "incast", FLOW_BYTES, fresh_rng())
        assert again == incast

    def test_ecn_tames_incast_tail(self):
        """The headline: same buffers, marking vs drop-tail.  Drop-tail
        incast recovers by RTO (20 ms); ECN keeps flows out of timeout,
        cutting p99 FCT by an order of magnitude."""
        ecn = run_scenario(TOPO, "incast", FLOW_BYTES, fresh_rng(name="a"))
        droptail = run_scenario(
            TopologySpec(racks=2, nodes_per_rack=2, spines=2, ecn=False),
            "incast", FLOW_BYTES, fresh_rng(name="a"))
        assert ecn.ecn_marks_seen > 0
        assert ecn.ecn_responses > 0
        assert droptail.ecn_marks_seen == 0
        assert droptail.fct_p99_s > 5 * ecn.fct_p99_s

    def test_uniform_mix_completes(self):
        result = run_scenario(TOPO, "uniform", FLOW_BYTES, fresh_rng(),
                              flows_per_node=2)
        assert result.completed == result.flows == TOPO.n_nodes * 2
        assert result.packets_ingested > 0
