"""Tests for the cluster topology description."""

import pytest

from repro.cluster import TopologySpec, single_node_spec


class TestValidation:
    def test_defaults_are_valid(self):
        topo = TopologySpec()
        assert topo.n_nodes == 8
        assert not topo.is_single_node

    def test_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError):
            TopologySpec(racks=0)
        with pytest.raises(ValueError):
            TopologySpec(nodes_per_rack=0)
        with pytest.raises(ValueError):
            TopologySpec(spines=0)

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError):
            TopologySpec(node_profile="mystery-box")

    def test_fabricless_must_be_single_node(self):
        with pytest.raises(ValueError):
            TopologySpec(racks=2, nodes_per_rack=4, fabric=False)

    def test_rejects_invalid_red_thresholds(self):
        with pytest.raises(ValueError):
            TopologySpec(red_min_bytes=90_000, red_max_bytes=30_000)


class TestAddressing:
    def test_node_ids_and_rack_mapping(self):
        topo = TopologySpec(racks=2, nodes_per_rack=3)
        assert topo.node_ids() == tuple(range(6))
        assert [topo.rack_of(n) for n in topo.node_ids()] == [0, 0, 0, 1, 1, 1]
        assert [topo.slot_of(n) for n in topo.node_ids()] == [0, 1, 2, 0, 1, 2]

    def test_addresses_are_unique_and_invertible(self):
        topo = TopologySpec(racks=2, nodes_per_rack=4)
        addresses = [topo.address_of(n) for n in topo.node_ids()]
        assert len(set(addresses)) == topo.n_nodes
        for node_id, address in zip(topo.node_ids(), addresses):
            assert topo.node_of_address(address) == node_id


class TestTopologyId:
    def test_leafspine_id_encodes_shape_and_aqm(self):
        assert (TopologySpec(racks=2, nodes_per_rack=4, spines=2).topology_id()
                == "leafspine:r2xn4:s2:host+bf2:ecn")
        assert (TopologySpec(racks=2, nodes_per_rack=4, ecn=False)
                .topology_id().endswith(":droptail"))

    def test_single_node_spec_reduces(self):
        topo = single_node_spec()
        assert topo.is_single_node
        assert topo.n_nodes == 1
        assert topo.topology_id() == "single:host+bf2"
