"""The N=1 reduction: a single-node, fabric-less cluster run must be
byte-identical to the plain single-node experiments.

This is the acceptance gate for the cluster refactor: adding the
cluster layer must not perturb the seed repo's results.  The cluster
experiment's ``single`` tier mirrors fig4/fig5's smoke tiers exactly
(same caps, keys, rates), so a direct smoke run with the same seed is
the comparison target.
"""

import json

import pytest

from repro.core.rng import RandomStreams
from repro.experiments import registry
from repro.experiments.cluster import cluster_json, format_cluster
from repro.experiments.fig4 import fig4_row_json, format_fig4
from repro.experiments.fig5 import format_fig5

SEED = 2023


@pytest.fixture(scope="module")
def reduction():
    ctx = registry.ExperimentContext(streams=RandomStreams(SEED),
                                     tier="single")
    return ctx.run("cluster")


@pytest.fixture(scope="module")
def direct():
    ctx = registry.ExperimentContext(streams=RandomStreams(SEED),
                                     tier=registry.SMOKE_TIER)
    return ctx.run("fig4"), ctx.run("fig5")


class TestReduction:
    def test_reduces_to_single_node(self, reduction):
        assert reduction.topology_id == "single:host+bf2"
        assert reduction.fig4_rows
        assert reduction.fig5_curves

    def test_fig4_byte_identical(self, reduction, direct):
        rows4, _ = direct
        assert format_fig4(reduction.fig4_rows) == format_fig4(rows4)
        assert ([fig4_row_json(r) for r in reduction.fig4_rows]
                == [fig4_row_json(r) for r in rows4])

    def test_fig5_byte_identical(self, reduction, direct):
        _, curves5 = direct
        assert format_fig5(reduction.fig5_curves) == format_fig5(curves5)

    def test_formatter_handles_reduction(self, reduction):
        text = format_cluster(reduction)
        assert "single:host+bf2" in text

    def test_json_shape_passes_cluster_schema(self, reduction):
        from repro.analysis.export import validate_artifact

        doc = cluster_json(reduction)
        assert doc["n_nodes"] == 1
        assert doc["scenarios"] == []
        assert validate_artifact(doc, registry.get("cluster").schema) == []

    def test_json_fig4_payload_matches_direct(self, reduction, direct):
        rows4, _ = direct
        doc = cluster_json(reduction)
        assert (json.dumps(doc["single_node_fig4"], sort_keys=True)
                == json.dumps([fig4_row_json(r) for r in rows4],
                              sort_keys=True))
