"""The registered ``cluster`` verb: registry walk, jobs-identity, JSON."""

import pytest

from repro.analysis.export import validate_artifact
from repro.core.executor import ParallelExecutor
from repro.core.rng import RandomStreams
from repro.experiments import registry
from repro.experiments.cluster import (
    SMOKE_SCENARIOS,
    cluster_json,
    format_cluster,
    run_cluster_study,
)
from repro.obs import metrics

SMOKE_KW = dict(scenarios=SMOKE_SCENARIOS, flow_bytes=65_536,
                samples=40, n_packets=2_500)


@pytest.fixture(scope="module")
def study():
    return run_cluster_study(streams=RandomStreams(2023), **SMOKE_KW)


class TestRegistry:
    def test_cluster_is_registered(self):
        assert "cluster" in registry.names()
        spec = registry.get("cluster")
        assert set(spec.tiers) >= {"default", "smoke", "single"}

    def test_smoke_tier_runs_through_context(self):
        ctx = registry.ExperimentContext(
            streams=RandomStreams(2023), tier=registry.SMOKE_TIER)
        result = ctx.run("cluster")
        labels = [label for label, _ in result.scenarios]
        assert labels == list(SMOKE_SCENARIOS)
        assert result.n_nodes == 8
        incast = dict(result.scenarios)["incast-ecn"]
        assert incast.completed == incast.flows
        assert incast.ecn_marks_seen > 0


class TestStudy:
    def test_ecn_beats_droptail(self, study):
        by_label = dict(study.scenarios)
        assert (by_label["incast-droptail"].fct_p99_s
                > 5 * by_label["incast-ecn"].fct_p99_s)

    def test_fleet_covers_all_node_profiles(self, study):
        for placement in study.fleet:
            assert set(placement.options) == {"host+bf2", "host-only",
                                              "all-snic"}
            assert placement.chosen in placement.options

    def test_accel_function_prefers_headless_snic(self, study):
        by_key = {p.profile_key: p for p in study.fleet}
        assert by_key["rem:file_image"].chosen == "all-snic"

    def test_rack_outage_study_present(self, study):
        outage = study.outage
        assert outage.rack_nodes == 4
        assert 0.5 <= outage.outcome.availability <= 1.0
        assert outage.outage_end_s > outage.outage_start_s

    def test_formatter_renders(self, study):
        text = format_cluster(study)
        assert "incast-ecn" in text
        assert "fleet placement" in text
        assert "rack-outage failover" in text


class TestJobsIdentity:
    def test_metrics_and_results_identical_at_any_jobs(self):
        """Per-port fabric counters merge byte-identically at --jobs N
        (worker deltas merged in submission order)."""

        def run(jobs):
            executor = ParallelExecutor(jobs)
            before = metrics.snapshot()
            try:
                study = run_cluster_study(streams=RandomStreams(2023),
                                          executor=executor, **SMOKE_KW)
            finally:
                executor.close()
            delta = metrics.delta_since(before)
            fabric = {name: value
                      for name, value in delta.get("counters", {}).items()
                      if name.startswith("fabric.")}
            return study, fabric

        serial_study, serial_fabric = run(1)
        parallel_study, parallel_fabric = run(2)
        assert serial_fabric[
            "fabric.port.enqueued"] > 0
        assert parallel_fabric == serial_fabric
        assert format_cluster(parallel_study) == format_cluster(serial_study)


class TestJsonArtifact:
    def test_json_matches_schema(self, study):
        doc = cluster_json(study)
        errors = validate_artifact(doc, registry.get("cluster").schema)
        assert errors == []

    def test_json_carries_fabric_accounting(self, study):
        doc = cluster_json(study)
        incast = doc["scenarios"][0]
        assert incast["label"] == "incast-ecn"
        assert incast["fabric_marked"] > 0
        assert doc["rack_outage"]["offered"] == 2_500
