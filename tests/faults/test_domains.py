"""Tests for correlated fault domains (rack / switch scope)."""

import pytest

from repro.cluster import TopologySpec
from repro.core.rng import RandomStreams
from repro.faults import (
    KIND_OUTAGE,
    FaultSpec,
    FaultTimeline,
    correlated,
    materialize,
    node_target,
    outage_windows,
    rack_outage,
    rack_targets,
    spine_outage,
    spine_target,
)

TOPO = TopologySpec(racks=2, nodes_per_rack=4, spines=2)


class TestCorrelatedMaterialization:
    def test_shared_key_gives_identical_episodes(self):
        specs = correlated("rack0-power", ["node:0", "node:1", "node:2"],
                           mtbf_s=100.0, mttr_s=5.0)
        streams = RandomStreams(7)
        episodes = [materialize(s, 10_000.0, streams) for s in specs]
        assert episodes[0], "expected at least one episode over the horizon"
        assert episodes[0] == episodes[1] == episodes[2]

    def test_uncorrelated_specs_draw_independently(self):
        a = FaultSpec.stochastic("a", "node:0", mtbf_s=100.0, mttr_s=5.0)
        b = FaultSpec.stochastic("b", "node:1", mtbf_s=100.0, mttr_s=5.0)
        streams = RandomStreams(7)
        assert materialize(a, 10_000.0, streams) != materialize(
            b, 10_000.0, streams)

    def test_correlation_does_not_change_uncorrelated_draws(self):
        """Adding a correlated family must not perturb existing specs."""
        solo = FaultSpec.stochastic("flaky", "link", mtbf_s=1.0, mttr_s=0.2)
        alone = materialize(solo, 50.0, RandomStreams(7))
        streams = RandomStreams(7)
        for spec in correlated("rack0", ["node:0", "node:1"],
                               mtbf_s=10.0, mttr_s=1.0):
            materialize(spec, 50.0, streams)
        assert materialize(solo, 50.0, streams) == alone

    def test_replays_across_registries(self):
        spec = correlated("ev", ["node:0"], mtbf_s=100.0, mttr_s=5.0)[0]
        assert materialize(spec, 5_000.0, RandomStreams(3)) == materialize(
            spec, 5_000.0, RandomStreams(3))

    def test_one_shot_family(self):
        specs = correlated("maint", ["node:0", "node:1"],
                           start_s=2.0, duration_s=1.0)
        for spec in specs:
            assert materialize(spec, 10.0) == [(2.0, 3.0)]

    def test_rejects_both_time_patterns(self):
        with pytest.raises(ValueError):
            correlated("x", ["node:0"], mtbf_s=1.0, mttr_s=1.0,
                       duration_s=2.0)

    def test_rejects_empty_targets(self):
        with pytest.raises(ValueError):
            correlated("x", [])


class TestScopeHelpers:
    def test_rack_targets(self):
        assert rack_targets(TOPO, 0) == ["node:0", "node:1", "node:2",
                                         "node:3"]
        assert rack_targets(TOPO, 1) == ["node:4", "node:5", "node:6",
                                         "node:7"]
        with pytest.raises(ValueError):
            rack_targets(TOPO, 2)

    def test_rack_outage_family(self):
        specs = rack_outage(TOPO, 1, mtbf_s=100.0, mttr_s=5.0)
        assert [s.target for s in specs] == rack_targets(TOPO, 1)
        assert all(s.correlation == "rack1-power" for s in specs)
        assert all(s.kind == KIND_OUTAGE for s in specs)
        names = [s.name for s in specs]
        assert len(set(names)) == len(names)

    def test_spine_outage(self):
        (spec,) = spine_outage(TOPO, 1, start_s=1.0, duration_s=0.5)
        assert spec.target == spine_target(1) == "spine:1"
        with pytest.raises(ValueError):
            spine_outage(TOPO, 5, duration_s=1.0)

    def test_whole_rack_fails_in_lockstep(self):
        specs = rack_outage(TOPO, 0, mtbf_s=200.0, mttr_s=10.0)
        tl = FaultTimeline(specs, horizon_s=20_000.0,
                           streams=RandomStreams(11))
        per_node = [tl.episodes(s.name) for s in specs]
        assert per_node[0], "expected episodes over the horizon"
        assert all(eps == per_node[0] for eps in per_node[1:])


class TestOutageWindows:
    def test_windows_keyed_by_target(self):
        specs = rack_outage(TOPO, 0, start_s=1.0, duration_s=2.0)
        specs += spine_outage(TOPO, 0, start_s=5.0, duration_s=1.0)
        windows = outage_windows(FaultTimeline(specs, horizon_s=10.0))
        assert windows[node_target(0)] == [(1.0, 3.0)]
        assert windows["spine:0"] == [(5.0, 6.0)]

    def test_non_outage_kinds_excluded(self):
        specs = [FaultSpec.one_shot("slow", "node:0", 1.0, 2.0,
                                    kind="degrade")]
        assert outage_windows(FaultTimeline(specs, horizon_s=10.0)) == {}

    def test_windows_sorted(self):
        specs = [
            FaultSpec.one_shot("late", "node:0", 5.0, 1.0),
            FaultSpec.one_shot("early", "node:0", 1.0, 1.0),
        ]
        windows = outage_windows(FaultTimeline(specs, horizon_s=10.0))
        assert windows["node:0"] == [(1.0, 2.0), (5.0, 6.0)]
