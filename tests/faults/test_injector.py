"""Tests for the DES fault injector and the component health models."""

import numpy as np

from repro.core.engine import Simulator
from repro.core.rng import RandomStreams
from repro.faults import (
    ComponentHealth,
    FaultInjector,
    FaultSpec,
    FaultTimeline,
    SnicHealth,
)
from repro.netstack.link import Link
from repro.netstack.packet import PROTO_UDP, Packet


def make_packet() -> Packet:
    return Packet(proto=PROTO_UDP, src_ip=1, src_port=1234, dst_ip=2,
                  dst_port=7, payload=b"x" * 64)


class RecordingTarget:
    def __init__(self, sim):
        self.sim = sim
        self.events = []

    def fault_begin(self, fault):
        self.events.append(("begin", fault.spec.name, self.sim.now))

    def fault_end(self, fault):
        self.events.append(("end", fault.spec.name, self.sim.now))


class TestInjector:
    def test_callbacks_fire_at_episode_boundaries(self):
        sim = Simulator()
        specs = [FaultSpec.one_shot("boom", "accel", start_s=2.0, duration_s=3.0)]
        injector = FaultInjector(sim, FaultTimeline(specs, horizon_s=10.0))
        target = RecordingTarget(sim)
        injector.attach("accel", target)
        injector.start()
        sim.run()
        assert target.events == [("begin", "boom", 2.0), ("end", "boom", 5.0)]
        assert [(r.phase, r.time_s) for r in injector.log] == [
            ("begin", 2.0), ("end", 5.0)
        ]

    def test_periodic_fault_toggles_repeatedly(self):
        sim = Simulator()
        specs = [FaultSpec.periodic("flap", "link", start_s=1.0, period_s=2.0,
                                    duration_s=0.5)]
        injector = FaultInjector(sim, FaultTimeline(specs, horizon_s=6.0))
        target = RecordingTarget(sim)
        injector.attach("link", target)
        injector.start()
        sim.run()
        begins = [t for phase, _, t in target.events if phase == "begin"]
        assert begins == [1.0, 3.0, 5.0]

    def test_unattached_targets_only_logged(self):
        sim = Simulator()
        specs = [FaultSpec.one_shot("boom", "nowhere", 1.0, 1.0)]
        injector = FaultInjector(sim, FaultTimeline(specs, horizon_s=5.0))
        injector.start()
        sim.run()
        assert len(injector.log) == 2  # no crash without targets

    def test_link_flap_loses_packets_while_down(self):
        """End-to-end: injector drives a Link through a flap window."""
        sim = Simulator()
        received = []
        link = Link(sim, gbps=100.0)
        link.attach(received.append)
        specs = [FaultSpec.one_shot("flap", "uplink", start_s=1.0,
                                    duration_s=1.0, kind="link-flap")]
        injector = FaultInjector(sim, FaultTimeline(specs, horizon_s=5.0))
        injector.attach("uplink", link)
        injector.start()

        def sender():
            for _ in range(30):
                link.send(make_packet())
                yield sim.timeout(0.1)

        sim.process(sender())
        sim.run()
        assert link.flap_lost > 0
        assert link.delivered == 30 - link.flap_lost
        assert not link.down  # recovered


class TestComponentHealth:
    def test_outage_and_recovery(self):
        sim = Simulator()
        health = ComponentHealth("accel")
        specs = [FaultSpec.one_shot("out", "accel", 1.0, 1.0, kind="outage")]
        injector = FaultInjector(sim, FaultTimeline(specs, horizon_s=5.0))
        injector.attach("accel", health)
        injector.start()
        sim.run(until=1.5)
        assert not health.available
        assert health.service_multiplier == float("inf")
        sim.run()
        assert health.available
        assert health.fault_count == 1

    def test_throttle_and_core_loss_compound(self):
        health = ComponentHealth()
        specs = [
            FaultSpec.one_shot("hot", "x", 0.0, 2.0, kind="degrade", severity=2.0),
            FaultSpec.one_shot("dead-cores", "x", 0.0, 2.0, kind="core-loss",
                              severity=0.5),
        ]
        sim = Simulator()
        injector = FaultInjector(sim, FaultTimeline(specs, horizon_s=5.0))
        injector.attach("x", health)
        injector.start()
        sim.run(until=1.0)
        assert health.throttle_factor == 2.0
        assert health.core_fraction == 0.5
        assert health.service_multiplier == 4.0


class TestSnicHealth:
    def test_timestamp_queries(self):
        specs = [
            FaultSpec.one_shot("out", "snic", 1.0, 1.0, kind="outage"),
            FaultSpec.one_shot("hot", "snic", 3.0, 1.0, kind="degrade",
                              severity=3.0),
        ]
        health = SnicHealth(FaultTimeline(specs, horizon_s=10.0), target="snic")
        assert health.available(0.5)
        assert not health.available(1.5)
        assert health.unavailable_until(1.5) == 2.0
        assert health.unavailable_until(0.5) == 0.5
        assert health.service_factor(1.5) == float("inf")
        assert health.service_factor(3.5) == 3.0
        assert health.service_factor(5.0) == 1.0
        assert health.outage_windows() == [(1.0, 2.0)]

    def test_deterministic_masks(self):
        streams = RandomStreams(11)
        specs = [FaultSpec.stochastic("flaky", "snic", mtbf_s=0.1, mttr_s=0.02)]
        a = FaultTimeline(specs, 5.0, RandomStreams(11))
        b = FaultTimeline(specs, 5.0, streams)
        times = np.linspace(0, 5, 1000)
        assert (a.active_mask(times, "snic") == b.active_mask(times, "snic")).all()
