"""Tests for timeout/retry with exponential backoff and jitter."""

import numpy as np
import pytest

from repro.core.engine import Simulator
from repro.faults import RetryPolicy, retrying_process, simulate_retries


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.0)

    def test_backoff_doubles_without_jitter(self):
        policy = RetryPolicy(timeout_s=1e-3, backoff_factor=2.0,
                             jitter_fraction=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_s(0, rng) == pytest.approx(1e-3)
        assert policy.backoff_s(1, rng) == pytest.approx(2e-3)
        assert policy.backoff_s(3, rng) == pytest.approx(8e-3)

    def test_jitter_bounds(self):
        policy = RetryPolicy(timeout_s=1e-3, jitter_fraction=0.2)
        rng = np.random.default_rng(1)
        draws = [policy.backoff_s(0, rng) for _ in range(200)]
        assert all(0.8e-3 <= d <= 1.2e-3 for d in draws)
        assert max(draws) > 1.05e-3 and min(draws) < 0.95e-3

    def test_deterministic_with_seeded_rng(self):
        policy = RetryPolicy(timeout_s=1e-3, jitter_fraction=0.3)
        a = [policy.backoff_s(i, np.random.default_rng(5)) for i in range(3)]
        b = [policy.backoff_s(i, np.random.default_rng(5)) for i in range(3)]
        assert a == b


class TestSimulateRetries:
    def test_first_attempt_success_has_no_delay(self):
        policy = RetryPolicy(timeout_s=1e-3)
        outcome = simulate_retries(lambda i: False, policy,
                                   np.random.default_rng(0))
        assert outcome.delivered and outcome.attempts == 1
        assert outcome.extra_delay_s == 0.0

    def test_eventual_success_accumulates_backoff(self):
        policy = RetryPolicy(timeout_s=1e-3, jitter_fraction=0.0)
        outcome = simulate_retries(lambda i: i < 2, policy,
                                   np.random.default_rng(0))
        assert outcome.delivered and outcome.attempts == 3
        assert outcome.extra_delay_s == pytest.approx(1e-3 + 2e-3)

    def test_exhaustion_reports_undelivered(self):
        policy = RetryPolicy(timeout_s=1e-3, max_attempts=3,
                             jitter_fraction=0.0)
        outcome = simulate_retries(lambda i: True, policy,
                                   np.random.default_rng(0))
        assert not outcome.delivered
        assert outcome.attempts == 3
        # No backoff is charged after the final (failed) attempt.
        assert outcome.extra_delay_s == pytest.approx(1e-3 + 2e-3)


class TestRetryingProcess:
    def _drive(self, fail_first_n, policy):
        sim = Simulator()
        attempts = []

        def attempt(i):
            attempts.append((i, sim.now))
            event = sim.event()
            event.trigger(i >= fail_first_n)  # succeed after n failures
            return event

        rng = np.random.default_rng(0)
        process = sim.process(retrying_process(sim, attempt, policy, rng))
        sim.run()
        return process.value, attempts, sim

    def test_retries_sleep_on_kernel_clock(self):
        policy = RetryPolicy(timeout_s=1e-3, jitter_fraction=0.0)
        outcome, attempts, sim = self._drive(2, policy)
        assert outcome.delivered and outcome.attempts == 3
        # Attempt times: 0, after 1 ms backoff, after 2 ms more.
        times = [t for _, t in attempts]
        assert times == pytest.approx([0.0, 1e-3, 3e-3])
        assert sim.now == pytest.approx(3e-3)

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(timeout_s=1e-3, max_attempts=2,
                             jitter_fraction=0.0)
        outcome, attempts, _ = self._drive(99, policy)
        assert not outcome.delivered
        assert len(attempts) == 2


class TestElapsedDeadline:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=2.0, max_elapsed_s=1.0)
        # Exactly one attempt's timeout is a legal (tight) deadline.
        RetryPolicy(timeout_s=1.0, max_elapsed_s=1.0)

    def test_within_deadline(self):
        policy = RetryPolicy(timeout_s=0.1, max_elapsed_s=1.0)
        assert policy.within_deadline(0.5)
        assert not policy.within_deadline(1.0)
        assert not policy.within_deadline(2.0)
        unbounded = RetryPolicy(timeout_s=0.1)
        assert unbounded.within_deadline(1e12)

    def test_simulate_retries_gives_up_at_deadline(self):
        # 1 ms timeout doubling: backoffs 1, 2, 4, ... ms.  A 2.5 ms
        # deadline allows the first retry (1 ms) but not the second
        # (1 + 2 = 3 ms), even with attempts to spare.
        policy = RetryPolicy(timeout_s=1e-3, max_attempts=10,
                             jitter_fraction=0.0, max_elapsed_s=2.5e-3)
        rng = np.random.default_rng(0)
        outcome = simulate_retries(lambda i: True, policy, rng)
        assert not outcome.delivered
        assert outcome.attempts == 2
        assert outcome.extra_delay_s == pytest.approx(1e-3)

    def test_retrying_process_gives_up_at_deadline(self):
        sim = Simulator()
        policy = RetryPolicy(timeout_s=1e-3, max_attempts=10,
                             jitter_fraction=0.0, max_elapsed_s=2.5e-3)
        attempts = []

        def attempt(i):
            attempts.append((i, sim.now))
            event = sim.event()
            event.trigger(False)  # every attempt is lost
            return event

        rng = np.random.default_rng(0)
        process = sim.process(retrying_process(sim, attempt, policy, rng))
        sim.run()
        outcome = process.value
        assert not outcome.delivered
        assert outcome.attempts == 2
        # Gave up at 1 ms elapsed: the 2 ms second backoff would land
        # past the 2.5 ms deadline.
        assert sim.now == pytest.approx(1e-3)

    def test_unbounded_policy_unchanged(self):
        bounded = RetryPolicy(timeout_s=1e-3, max_attempts=4,
                              jitter_fraction=0.0, max_elapsed_s=1.0)
        unbounded = RetryPolicy(timeout_s=1e-3, max_attempts=4,
                                jitter_fraction=0.0)
        rng = np.random.default_rng(0)
        # A generous deadline never changes the outcome.
        a = simulate_retries(lambda i: i < 2, bounded, rng)
        b = simulate_retries(lambda i: i < 2, unbounded, rng)
        assert (a.delivered, a.attempts) == (b.delivered, b.attempts)
        assert a.extra_delay_s == pytest.approx(b.extra_delay_s)
