"""Tests for fault specs, materialization, and the timeline."""

import numpy as np
import pytest

from repro.core.rng import RandomStreams
from repro.faults import (
    KIND_CORE_LOSS,
    KIND_DEGRADE,
    KIND_OUTAGE,
    FaultSpec,
    FaultTimeline,
    materialize,
)


class TestSpecs:
    def test_one_shot_episode(self):
        spec = FaultSpec.one_shot("f", "accel", start_s=1.0, duration_s=0.5)
        assert materialize(spec, 10.0) == [(1.0, 1.5)]

    def test_one_shot_clipped_to_horizon(self):
        spec = FaultSpec.one_shot("f", "accel", start_s=9.0, duration_s=5.0)
        assert materialize(spec, 10.0) == [(9.0, 10.0)]

    def test_one_shot_outside_horizon_is_empty(self):
        spec = FaultSpec.one_shot("f", "accel", start_s=20.0, duration_s=1.0)
        assert materialize(spec, 10.0) == []

    def test_periodic_episodes(self):
        spec = FaultSpec.periodic("f", "link", start_s=0.0, period_s=2.0,
                                  duration_s=0.5)
        episodes = materialize(spec, 6.0)
        assert episodes == [(0.0, 0.5), (2.0, 2.5), (4.0, 4.5)]

    def test_periodic_requires_period(self):
        with pytest.raises(ValueError):
            FaultSpec(name="f", target="x", mode="periodic", period_s=0.0)

    def test_stochastic_requires_mtbf_mttr(self):
        with pytest.raises(ValueError):
            FaultSpec.stochastic("f", "x", mtbf_s=0.0, mttr_s=1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(name="f", target="x", mode="sometimes")

    def test_stochastic_is_deterministic_per_seed(self):
        spec = FaultSpec.stochastic("flaky", "link", mtbf_s=1.0, mttr_s=0.2)
        a = materialize(spec, 100.0, RandomStreams(7))
        b = materialize(spec, 100.0, RandomStreams(7))
        assert a == b
        c = materialize(spec, 100.0, RandomStreams(8))
        assert a != c

    def test_stochastic_independent_streams_per_fault(self):
        """Adding a second fault must not perturb the first one's draws."""
        streams = RandomStreams(7)
        spec = FaultSpec.stochastic("flaky", "link", mtbf_s=1.0, mttr_s=0.2)
        other = FaultSpec.stochastic("other", "accel", mtbf_s=2.0, mttr_s=0.1)
        alone = materialize(spec, 50.0, RandomStreams(7))
        materialize(other, 50.0, streams)
        together = materialize(spec, 50.0, streams)
        assert alone == together

    def test_stochastic_mean_downtime_tracks_mttr(self):
        spec = FaultSpec.stochastic("flaky", "link", mtbf_s=10.0, mttr_s=1.0)
        timeline = FaultTimeline([spec], horizon_s=10_000.0,
                                 streams=RandomStreams(3))
        down = timeline.downtime_s("link")
        # Expected down fraction = MTTR / (MTBF + MTTR) ~ 9 %.
        assert 0.04 < down / 10_000.0 < 0.16


class TestTimeline:
    def _timeline(self):
        specs = [
            FaultSpec.one_shot("out", "accel", 1.0, 1.0, kind=KIND_OUTAGE),
            FaultSpec.one_shot("slow", "accel", 1.5, 2.0, kind=KIND_DEGRADE,
                              severity=2.5),
            FaultSpec.one_shot("cores", "snic-cpu", 0.5, 3.0,
                              kind=KIND_CORE_LOSS, severity=0.5),
        ]
        return FaultTimeline(specs, horizon_s=10.0)

    def test_active_filters_by_target_and_kind(self):
        tl = self._timeline()
        assert len(tl.active(1.6)) == 3
        assert len(tl.active(1.6, target="accel")) == 2
        assert len(tl.active(1.6, target="accel", kind=KIND_OUTAGE)) == 1
        assert tl.active(9.0) == []

    def test_severity_default_and_max(self):
        tl = self._timeline()
        assert tl.severity(1.6, "accel", KIND_DEGRADE, default=1.0) == 2.5
        assert tl.severity(0.1, "accel", KIND_DEGRADE, default=1.0) == 1.0

    def test_active_mask_vectorized(self):
        tl = self._timeline()
        times = np.array([0.0, 1.2, 1.9, 2.5, 4.0])
        mask = tl.active_mask(times, "accel", KIND_OUTAGE)
        assert mask.tolist() == [False, True, True, False, False]

    def test_downtime_merges_overlaps(self):
        tl = self._timeline()
        # outage [1,2) + degrade [1.5,3.5) union = [1, 3.5)
        assert tl.downtime_s("accel") == pytest.approx(2.5)

    def test_all_episodes_sorted(self):
        episodes = self._timeline().all_episodes()
        starts = [e.start_s for e in episodes]
        assert starts == sorted(starts)
