"""Tests for NAT, BM25, Snort-style IDS, and the OvS model."""

import numpy as np
import pytest

from repro.functions.bm25 import Bm25Ranker, build_index, tokenize
from repro.functions.nat import CACHE_RESIDENT_ENTRIES, NatTable, build_random_table
from repro.functions.ovs import ESwitchDatapath, FlowTable, WildcardRule
from repro.functions.snort import IntrusionDetector, PacketMeta, inspect_stream
from repro.functions.regex.rulesets import load_ruleset


class TestNat:
    def test_ingress_translation(self):
        table = NatTable()
        table.install(100, 80, 200, 8080)
        translated, work = table.translate_ingress((17, 1, 2, 100, 80))
        assert translated == (17, 1, 2, 200, 8080)
        assert work.get("nat_rewrite") == 1.0

    def test_ingress_miss_drops(self):
        table = NatTable()
        translated, _ = table.translate_ingress((17, 1, 2, 100, 80))
        assert translated is None
        assert table.dropped == 1

    def test_egress_translation(self):
        table = NatTable()
        rewritten, _ = table.translate_egress((17, 200, 8080, 9, 53), 100, 80)
        assert rewritten == (17, 100, 80, 9, 53)

    def test_small_table_uses_warm_lookup(self):
        table = build_random_table(1000, np.random.default_rng(0))
        _, work = table.translate_ingress((17, 1, 2, 3, 4))
        assert work.get("nat_lookup") == 1.0
        assert work.get("nat_lookup_cold") == 0.0

    def test_large_table_uses_cold_lookup(self):
        table = NatTable()
        # install() is O(n); fake size via direct entries for speed
        for i in range(CACHE_RESIDENT_ENTRIES + 10):
            table._entries[(i, i)] = None  # type: ignore[assignment]
        _, work = table.translate_ingress((17, 1, 2, 3, 4))
        assert work.get("nat_lookup_cold") == 1.0

    def test_build_random_table_size(self):
        table = build_random_table(500, np.random.default_rng(1))
        assert 0 < len(table) <= 500  # collisions may dedupe a few


class TestBm25:
    @pytest.fixture
    def index(self):
        return build_index(
            [
                "the cat sat on the mat",
                "dogs chase cats in the yard",
                "quantum computing with superconducting qubits",
                "the dog barked at the mailman",
            ]
        )

    def test_tokenize(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_relevant_doc_ranks_first(self, index):
        ranker = Bm25Ranker(index)
        ranked, _ = ranker.score("quantum qubits")
        assert ranked[0][0] == 2

    def test_common_terms_have_low_idf(self, index):
        ranker = Bm25Ranker(index)
        assert ranker.idf("the") < ranker.idf("quantum")

    def test_no_hit_query_returns_empty(self, index):
        ranker = Bm25Ranker(index)
        ranked, work = ranker.score("zebra xylophone")
        assert ranked == []
        assert work.get("bm25_query_term") == 2.0

    def test_work_scales_with_postings(self, index):
        ranker = Bm25Ranker(index)
        _, common = ranker.score("the")
        _, rare = ranker.score("quantum")
        assert common.get("bm25_posting") > rare.get("bm25_posting")

    def test_empty_index_rejected(self):
        from repro.functions.bm25 import InvertedIndex

        with pytest.raises(ValueError):
            Bm25Ranker(InvertedIndex())

    def test_duplicate_doc_id_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(0, "again")

    def test_top_k_limits_results(self):
        index = build_index([f"common word doc{i}" for i in range(20)])
        ranker = Bm25Ranker(index)
        ranked, _ = ranker.score("common", top_k=5)
        assert len(ranked) == 5

    def test_scores_deterministic(self, index):
        ranker = Bm25Ranker(index)
        first, _ = ranker.score("cat mat")
        second, _ = ranker.score("cat mat")
        assert first == second


class TestSnort:
    def test_alert_on_seeded_payload(self):
        detector = IntrusionDetector.from_named_ruleset("file_executable")
        fragment = load_ruleset("file_executable").seed_fragments[0]
        packet = PacketMeta("udp", 53, b"prefix " + fragment + b" suffix")
        alerts, work = detector.inspect(packet)
        assert alerts
        assert work.get("dfa_byte") == len(packet.payload)

    def test_clean_payload_no_alert(self):
        detector = IntrusionDetector.from_named_ruleset("file_executable")
        alerts, _ = detector.inspect(PacketMeta("udp", 53, b"innocuous text"))
        assert alerts == []

    def test_header_filter_skips_scan(self):
        detector = IntrusionDetector.from_named_ruleset("file_image")
        alerts, work = detector.inspect(PacketMeta("tcp", 80, b"\xff\xd8\xff"))
        assert alerts == []
        assert detector.stats.header_rejected == 1
        assert work.get("dfa_byte") == 0.0

    def test_stream_accounting(self):
        detector = IntrusionDetector.from_named_ruleset("file_image")
        fragment = load_ruleset("file_image").seed_fragments[0]
        packets = [
            PacketMeta("udp", 53, b"clean payload"),
            PacketMeta("udp", 53, fragment),
        ]
        alerts, work = inspect_stream(detector, packets)
        assert alerts >= 1
        assert detector.stats.packets == 2
        assert work.get("pkt_touch_byte") > 0


class TestOvs:
    def _key(self, dst_port=80):
        return (6, 0x0A000001, 0x0A000002, 40000, dst_port)

    def test_upcall_then_cache_hit(self):
        table = FlowTable()
        table.add_rule(WildcardRule(priority=10, dst_port=80, out_port=3))
        entry, work = table.classify(self._key())
        assert entry is not None and entry.out_port == 3
        assert work.get("flow_upcall") == 1.0
        entry, work = table.classify(self._key())
        assert work.get("flow_lookup") == 1.0
        assert table.stats.cache_hits == 1

    def test_priority_ordering(self):
        table = FlowTable()
        table.add_rule(WildcardRule(priority=1, out_port=1))
        table.add_rule(WildcardRule(priority=100, dst_port=80, out_port=2))
        entry, _ = table.classify(self._key(80))
        assert entry.out_port == 2

    def test_no_rule_drops(self):
        table = FlowTable()
        entry, _ = table.classify(self._key())
        assert entry is None
        assert table.stats.drops == 1

    def test_cache_eviction(self):
        table = FlowTable(cache_capacity=2)
        table.add_rule(WildcardRule(priority=1, out_port=1))
        for port in (1, 2, 3):
            table.classify(self._key(port))
        assert len(table.cache) == 2

    def test_eswitch_offload_path(self):
        table = FlowTable()
        table.add_rule(WildcardRule(priority=1, out_port=1))
        datapath = ESwitchDatapath(table)
        path, work = datapath.process(self._key())
        assert path == "software"
        assert work.total() > 0
        path, work = datapath.process(self._key())
        assert path == "hardware"
        assert work.total() == 0  # bump-in-the-wire: zero CPU work

    def test_hardware_fraction_grows_with_locality(self):
        table = FlowTable()
        table.add_rule(WildcardRule(priority=1, out_port=1))
        datapath = ESwitchDatapath(table)
        for _ in range(99):
            datapath.process(self._key())
        assert datapath.hardware_hit_fraction() > 0.9
