"""Tests for LZ77, Huffman, and the DEFLATE pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.compression import deflate, huffman, lz77


class TestLz77:
    def test_all_literals_for_unique_bytes(self):
        result = lz77.compress(bytes(range(200)), level=9)
        assert all(isinstance(t, lz77.Literal) for t in result.tokens)

    def test_repetition_produces_matches(self):
        result = lz77.compress(b"abcabcabcabcabc", level=9)
        assert any(isinstance(t, lz77.Match) for t in result.tokens)

    def test_roundtrip(self):
        data = b"the quick brown fox " * 50
        result = lz77.compress(data, level=9)
        assert lz77.decompress(result.tokens) == data

    def test_level_validation(self):
        with pytest.raises(ValueError):
            lz77.compress(b"x", level=2)

    def test_higher_level_probes_more(self):
        data = (b"abcdefgh" * 64 + b"abcdefghijklmnop" * 32) * 4
        fast = lz77.compress(data, level=1)
        best = lz77.compress(data, level=9)
        assert best.chain_probes >= fast.chain_probes

    def test_work_units(self):
        result = lz77.compress(b"aaaaaaaaaa", level=9)
        units = result.work_units()
        assert units.get("lz_byte") == 10.0

    def test_match_length_capped(self):
        result = lz77.compress(b"a" * 1000, level=9)
        for token in result.tokens:
            if isinstance(token, lz77.Match):
                assert token.length <= lz77.MAX_MATCH

    def test_decompress_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            lz77.decompress([lz77.Match(3, 10)])

    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        result = lz77.compress(data, level=6)
        assert lz77.decompress(result.tokens) == data


class TestHuffman:
    def test_single_symbol(self):
        lengths = huffman.code_lengths({65: 10})
        assert lengths == {65: 1}

    def test_empty(self):
        assert huffman.code_lengths({}) == {}

    def test_more_frequent_gets_shorter_code(self):
        lengths = huffman.code_lengths({0: 100, 1: 10, 2: 10, 3: 1})
        assert lengths[0] <= lengths[3]

    def test_kraft_inequality(self):
        frequencies = {i: (i + 1) ** 2 for i in range(40)}
        lengths = huffman.code_lengths(frequencies)
        assert sum(2.0 ** -l for l in lengths.values()) <= 1.0 + 1e-9

    def test_canonical_codes_prefix_free(self):
        lengths = huffman.code_lengths({i: i + 1 for i in range(10)})
        codes = huffman.canonical_codes(lengths)
        items = [(format(code, f"0{length}b")) for code, length in codes.values()]
        for a in items:
            for b in items:
                if a != b:
                    assert not b.startswith(a) or len(b) == len(a)

    def test_bitwriter_reader_roundtrip(self):
        writer = huffman.BitWriter()
        writer.write(0b101, 3)
        writer.write(0b0110, 4)
        reader = huffman.BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(4) == 0b0110

    def test_reader_eof(self):
        reader = huffman.BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_decoder_roundtrip(self):
        frequencies = {i: 50 - i for i in range(20)}
        lengths = huffman.code_lengths(frequencies)
        codes = huffman.canonical_codes(lengths)
        writer = huffman.BitWriter()
        symbols = [3, 7, 1, 19, 0, 3]
        huffman.encode_symbols(symbols, codes, writer)
        reader = huffman.BitReader(writer.getvalue())
        decoder = huffman.Decoder(lengths)
        assert [decoder.decode(reader) for _ in symbols] == symbols

    def test_serialize_lengths_roundtrip(self):
        lengths = {0: 3, 5: 2, 7: 3}
        header = huffman.serialize_lengths(lengths, 10)
        assert huffman.deserialize_lengths(header) == lengths

    def test_serialize_rejects_outside_alphabet(self):
        with pytest.raises(ValueError):
            huffman.serialize_lengths({11: 2}, 10)


class TestDeflate:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"aaaaaaaaaaaaaaaaaaaaaaaa",
            b"the quick brown fox jumps over the lazy dog " * 30,
            bytes(range(256)),
        ],
    )
    def test_roundtrip(self, data):
        result = deflate.compress(data, level=9)
        out, _ = deflate.decompress(result.payload)
        assert out == data

    def test_text_compresses_well(self):
        data = b"hello world, this is quite repetitive text. " * 100
        result = deflate.compress(data, level=9)
        assert result.ratio > 5.0

    def test_random_data_does_not_compress(self):
        rng = np.random.default_rng(0)
        data = bytes(rng.integers(0, 256, size=4096, dtype=np.uint8))
        result = deflate.compress(data, level=9)
        assert result.ratio < 1.1

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deflate.decompress(b"NOPE" + b"\x00" * 600)

    def test_work_units_present(self):
        result = deflate.compress(b"abc" * 100, level=9)
        assert result.work.get("lz_byte") == 300.0
        assert result.work.get("huffman_symbol") > 0

    def test_level_changes_effort(self):
        data = (b"abcdefgh" * 50 + b"zyxw" * 25) * 8
        fast = deflate.compress(data, level=1)
        best = deflate.compress(data, level=9)
        assert best.work.get("lz_match_search") >= fast.work.get("lz_match_search")
        assert best.compressed_size <= fast.compressed_size * 1.05

    @given(st.binary(min_size=0, max_size=600))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        result = deflate.compress(data, level=6)
        out, _ = deflate.decompress(result.payload)
        assert out == data
