"""Tests for DSA and ECDSA (the rest of the PKA family)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.crypto import dsa, ecc


class TestDsa:
    @pytest.fixture(scope="class")
    def key(self):
        rng = np.random.default_rng(5)
        parameters = dsa.generate_parameters(256, 160, rng)
        return dsa.generate_key(parameters, rng)

    def test_parameter_structure(self, key):
        params = key.parameters
        assert (params.p - 1) % params.q == 0
        assert pow(params.g, params.q, params.p) == 1
        assert params.g > 1

    def test_sign_verify(self, key):
        rng = np.random.default_rng(7)
        digest = 0xABCDEF123456789
        signature, work = dsa.sign(digest, key, rng)
        ok, _ = dsa.verify(digest, signature, key)
        assert ok
        assert work.get("rsa_limb_mul") > 0

    def test_verify_rejects_wrong_digest(self, key):
        rng = np.random.default_rng(8)
        signature, _ = dsa.sign(1234, key, rng)
        ok, _ = dsa.verify(1235, signature, key)
        assert not ok

    def test_verify_rejects_out_of_range(self, key):
        ok, _ = dsa.verify(1, (0, 5), key)
        assert not ok
        ok, _ = dsa.verify(1, (5, key.parameters.q), key)
        assert not ok

    def test_signatures_randomized(self, key):
        a, _ = dsa.sign(42, key, np.random.default_rng(1))
        b, _ = dsa.sign(42, key, np.random.default_rng(2))
        assert a != b  # fresh nonce per signature

    def test_q_size_validated(self):
        with pytest.raises(ValueError):
            dsa.generate_parameters(128, 128, np.random.default_rng(0))

    def test_verify_costs_two_exponentiations(self, key):
        rng = np.random.default_rng(9)
        signature, sign_work = dsa.sign(99, key, rng)
        _, verify_work = dsa.verify(99, signature, key)
        assert verify_work.get("rsa_limb_mul") > sign_work.get("rsa_limb_mul") * 0.8


class TestCurveArithmetic:
    def test_generator_on_curve(self):
        assert ecc.TINY_CURVE.is_on_curve(ecc.TINY_CURVE.g)
        assert ecc.P256.is_on_curve(ecc.P256.g)

    def test_infinity_is_identity(self):
        curve = ecc.TINY_CURVE
        assert curve.add(None, curve.g) == curve.g
        assert curve.add(curve.g, None) == curve.g

    def test_point_plus_negation_is_infinity(self):
        curve = ecc.TINY_CURVE
        x, y = curve.g
        assert curve.add(curve.g, (x, (-y) % curve.p)) is None

    def test_order_annihilates_generator(self):
        curve = ecc.TINY_CURVE
        point, _ = curve.scalar_multiply(curve.n, curve.g)
        assert point is None

    def test_scalar_multiply_matches_repeated_addition(self):
        curve = ecc.TINY_CURVE
        accumulated = None
        for k in range(1, 19):
            accumulated = curve.add(accumulated, curve.g)
            computed, _ = curve.scalar_multiply(k, curve.g)
            assert computed == accumulated, k

    def test_all_multiples_on_curve(self):
        curve = ecc.TINY_CURVE
        for k in range(1, int(curve.n)):
            point, _ = curve.scalar_multiply(k, curve.g)
            assert curve.is_on_curve(point)

    def test_negative_scalar_rejected(self):
        with pytest.raises(ValueError):
            ecc.TINY_CURVE.scalar_multiply(-1, ecc.TINY_CURVE.g)

    def test_p256_scalar_multiply_known_point(self):
        """2G on P-256 (SEC test vector)."""
        point, work = ecc.P256.scalar_multiply(2, ecc.P256.g)
        assert point[0] == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
        )
        assert work.get("rsa_limb_mul") > 0

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_group_homomorphism(self, k):
        """(k+1)G = kG + G on the tiny curve."""
        curve = ecc.TINY_CURVE
        kg, _ = curve.scalar_multiply(k, curve.g)
        k1g, _ = curve.scalar_multiply(k + 1, curve.g)
        assert curve.add(kg, curve.g) == k1g


class TestEcdsa:
    @pytest.fixture(scope="class")
    def key(self):
        return ecc.generate_key(ecc.P256, np.random.default_rng(3))

    def test_public_key_on_curve(self, key):
        assert ecc.P256.is_on_curve(key.q)

    def test_sign_verify(self, key):
        rng = np.random.default_rng(4)
        digest = 0x1122334455667788
        signature, work = ecc.sign(digest, key, rng)
        ok, _ = ecc.verify(digest, signature, key)
        assert ok
        assert work.get("rsa_limb_mul") > 1e4  # 256-bit scalar multiply

    def test_verify_rejects_tampered(self, key):
        rng = np.random.default_rng(6)
        signature, _ = ecc.sign(777, key, rng)
        r, s = signature
        ok, _ = ecc.verify(777, (r, s + 1), key)
        assert not ok

    def test_verify_rejects_out_of_range(self, key):
        ok, _ = ecc.verify(1, (0, 1), key)
        assert not ok

    def test_tiny_curve_roundtrip(self):
        key = ecc.generate_key(ecc.TINY_CURVE, np.random.default_rng(1))
        signature, _ = ecc.sign(7, key, np.random.default_rng(2))
        ok, _ = ecc.verify(7, signature, key)
        assert ok
