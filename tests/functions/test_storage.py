"""Tests for the RAMDisk, NVMe-oF target, and fio-style engine."""

import numpy as np
import pytest

from repro.functions.storage import (
    FioEngine,
    FioJobSpec,
    IoKind,
    NvmeCommand,
    NvmeOfTarget,
    RamDisk,
    StorageError,
)


class TestRamDisk:
    def test_capacity_alignment_enforced(self):
        with pytest.raises(ValueError):
            RamDisk(capacity_bytes=1000, block_bytes=4096)

    def test_write_read_roundtrip(self):
        disk = RamDisk(1 << 20)
        payload = bytes(range(256)) * 16  # one 4K block
        disk.write(5, payload)
        assert disk.read(5, 1) == payload

    def test_fresh_disk_reads_zero(self):
        disk = RamDisk(1 << 16)
        assert disk.read(0, 1) == b"\x00" * 4096

    def test_out_of_range_rejected(self):
        disk = RamDisk(1 << 16)  # 16 blocks
        with pytest.raises(StorageError):
            disk.read(16, 1)
        with pytest.raises(StorageError):
            disk.read(-1, 1)

    def test_unaligned_write_rejected(self):
        disk = RamDisk(1 << 16)
        with pytest.raises(StorageError):
            disk.write(0, b"tiny")


class TestNvmeOfTarget:
    @pytest.fixture
    def target(self):
        target = NvmeOfTarget()
        target.add_namespace(1, RamDisk(1 << 20))
        return target

    def test_identify(self, target):
        completion, _ = target.submit(NvmeCommand("identify"))
        assert completion.status == 0
        assert b"1:256" in completion.data

    def test_write_then_read(self, target):
        payload = b"\xab" * 4096
        completion, _ = target.submit(NvmeCommand("write", 1, lba=3, payload=payload))
        assert completion.status == 0
        completion, work = target.submit(NvmeCommand("read", 1, lba=3, blocks=1))
        assert completion.data == payload
        assert work.get("io_block_byte") == 4096.0

    def test_unknown_namespace(self, target):
        completion, _ = target.submit(NvmeCommand("read", 9, lba=0, blocks=1))
        assert completion.status == 1

    def test_out_of_range_io_fails_gracefully(self, target):
        completion, _ = target.submit(NvmeCommand("read", 1, lba=10_000, blocks=1))
        assert completion.status == 2

    def test_duplicate_namespace_rejected(self, target):
        with pytest.raises(StorageError):
            target.add_namespace(1, RamDisk(1 << 16))

    def test_unknown_opcode(self, target):
        completion, _ = target.submit(NvmeCommand("trim", 1))
        assert completion.status == 3


class TestFioEngine:
    @pytest.fixture
    def engine(self):
        target = NvmeOfTarget()
        target.add_namespace(1, RamDisk(8 << 20))
        return FioEngine(target, 1, np.random.default_rng(0))

    def test_randread_job(self, engine):
        job = FioJobSpec(kind=IoKind.READ, operations=50)
        errors, work = engine.run(job)
        assert errors == 0
        assert work.get("io_request") == 50.0
        assert work.get("io_block_byte") == 50.0 * 64 * 1024

    def test_randwrite_job(self, engine):
        job = FioJobSpec(kind=IoKind.WRITE, operations=30)
        errors, work = engine.run(job)
        assert errors == 0
        assert work.get("io_block_byte") == 30.0 * 64 * 1024

    def test_block_size_below_device_block_rejected(self, engine):
        with pytest.raises(StorageError):
            engine.run(FioJobSpec(block_bytes=1024, operations=1))

    def test_writes_visible_to_reads(self):
        target = NvmeOfTarget()
        target.add_namespace(1, RamDisk(8 << 20))
        writer = FioEngine(target, 1, np.random.default_rng(1))
        writer.run(FioJobSpec(kind=IoKind.WRITE, operations=200))
        disk = target.namespaces[1]
        nonzero = sum(1 for lba in range(0, disk.block_count, 16)
                      if any(disk.read(lba, 1)))
        assert nonzero > 0
