"""Tests for the Aho-Corasick prefilter and literal extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.regex.prefilter import (
    AhoCorasick,
    PrefilteredMatcher,
    extract_literal,
)


class TestAhoCorasick:
    def test_single_literal(self):
        ac = AhoCorasick([b"abc"])
        assert ac.scan(b"xxabcxx") == [(0, 5)]

    def test_multiple_literals(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        hits = ac.scan(b"ushers")
        found = {(lid, end) for lid, end in hits}
        assert (1, 4) in found  # "she"
        assert (0, 4) in found  # "he" (suffix of she)
        assert (3, 6) in found  # "hers"

    def test_overlapping_occurrences(self):
        ac = AhoCorasick([b"aa"])
        assert ac.scan(b"aaaa") == [(0, 2), (0, 3), (0, 4)]

    def test_contains_any(self):
        ac = AhoCorasick([b"needle"])
        assert ac.contains_any(b"hay needle hay")
        assert not ac.contains_any(b"just hay")

    def test_binary_literals(self):
        ac = AhoCorasick([b"\xff\xd8\xff"])
        assert ac.scan(b"\x00\xff\xd8\xff") == [(0, 4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            AhoCorasick([])
        with pytest.raises(ValueError):
            AhoCorasick([b""])

    @given(st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=8),
           st.binary(max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_naive_search(self, literals, payload):
        ac = AhoCorasick(literals)
        expected = set()
        for literal_id, literal in enumerate(literals):
            start = 0
            while True:
                index = payload.find(literal, start)
                if index < 0:
                    break
                expected.add((literal_id, index + len(literal)))
                start = index + 1
        # AC may report duplicate ids when identical literals repeat in
        # the input list; compare by (literal bytes, end).
        got = {(literals[lid], end) for lid, end in ac.scan(payload)}
        want = {(literals[lid], end) for lid, end in expected}
        assert got == want


class TestLiteralExtraction:
    def test_plain_literal(self):
        assert extract_literal("abcdef") == b"abcdef"

    def test_hex_pattern(self):
        assert extract_literal("\\xff\\xd8\\xff") == b"\xff\xd8\xff"

    def test_longest_run_chosen(self):
        assert extract_literal("ab[0-9]wxyz") == b"wxyz"

    def test_class_breaks_run(self):
        assert extract_literal("[a-z]x") is None  # single byte below minimum

    def test_counted_repeat_of_literal(self):
        assert extract_literal("z{4}") == b"zzzz"

    def test_alternation_has_no_mandatory_literal(self):
        assert extract_literal("abc|def") is None

    def test_optional_tail_excluded(self):
        assert extract_literal("abc(def)?") == b"abc"


class TestPrefilteredMatcher:
    PATTERNS = ["\\xd9\\xee\\xd9\\x74", "UPX0", "[a-z]{2}virus"]

    def test_matches_agree_with_exact_engine(self):
        matcher = PrefilteredMatcher(self.PATTERNS)
        payload = b"xx\xd9\xee\xd9\x74yy UPX0 zzvirus"
        filtered, _, scanned = matcher.scan(payload)
        exact, _ = matcher.exact.scan(payload)
        assert scanned
        assert filtered == exact

    def test_clean_traffic_skips_exact_engine(self):
        matcher = PrefilteredMatcher(["UPX0", "\\xd9\\xee\\xd9"])
        _, stats, scanned = matcher.scan(b"perfectly ordinary text")
        assert not scanned
        assert stats.deep_visits == 0

    def test_unfilterable_pattern_forces_scan(self):
        matcher = PrefilteredMatcher(["[0-9][a-f]"])  # no literal
        assert matcher.unfilterable
        _, _, scanned = matcher.scan(b"clean")
        assert scanned

    def test_batch_pass_rate(self):
        matcher = PrefilteredMatcher(["UPX0"])
        payloads = [b"clean"] * 9 + [b"has UPX0 inside"]
        report = matcher.scan_batch(payloads)
        assert report.packets == 10
        assert report.prefilter_passes == 1
        assert report.matches == 1
        assert report.pass_rate == pytest.approx(0.1)

    def test_rulesets_are_mostly_filterable(self):
        """The synthetic Snort rule sets extract literals for most rules —
        the property the two-stage design depends on."""
        from repro.functions.regex.rulesets import load_ruleset

        for name in ("file_image", "file_flash", "file_executable"):
            matcher = PrefilteredMatcher(list(load_ruleset(name).patterns))
            assert len(matcher.filterable) > len(matcher.unfilterable), name

    @given(st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_never_misses_what_exact_finds(self, payload):
        matcher = PrefilteredMatcher(self.PATTERNS)
        filtered, _, _ = matcher.scan(payload)
        exact, _ = matcher.exact.scan(payload)
        assert filtered == exact or (not filtered and not exact)
