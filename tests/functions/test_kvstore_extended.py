"""Tests for the extended KV-store commands and LRU eviction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.kvstore import KeyValueStore, encode_command


class TestExtendedCommands:
    @pytest.fixture
    def store(self):
        return KeyValueStore()

    def test_incr_from_missing(self, store):
        response, _ = store.execute(encode_command(b"INCR", b"counter"))
        assert response == b":1\r\n"
        response, _ = store.execute(encode_command(b"INCR", b"counter"))
        assert response == b":2\r\n"

    def test_incr_non_integer_errors(self, store):
        store.set(b"k", b"not-a-number")
        response, _ = store.execute(encode_command(b"INCR", b"k"))
        assert response.startswith(b"-ERR")

    def test_append(self, store):
        response, _ = store.execute(encode_command(b"APPEND", b"log", b"hello"))
        assert response == b":5\r\n"
        response, _ = store.execute(encode_command(b"APPEND", b"log", b" world"))
        assert response == b":11\r\n"
        value, _ = store.get(b"log")
        assert value == b"hello world"

    def test_mget(self, store):
        store.set(b"a", b"1")
        store.set(b"c", b"3")
        response, _ = store.execute(encode_command(b"MGET", b"a", b"b", b"c"))
        assert response == b"*3\r\n$1\r\n1\r\n$-1\r\n$1\r\n3\r\n"

    def test_expire_and_ttl(self, store):
        store.set(b"k", b"v", now=0.0)
        response, _ = store.execute(encode_command(b"TTL", b"k"), now=0.0)
        assert response == b":-1\r\n"  # no expiry
        response, _ = store.execute(encode_command(b"EXPIRE", b"k", b"10"), now=0.0)
        assert response == b":1\r\n"
        response, _ = store.execute(encode_command(b"TTL", b"k"), now=3.0)
        assert response == b":7\r\n"
        value, _ = store.get(b"k", now=11.0)
        assert value is None

    def test_expire_missing_key(self, store):
        response, _ = store.execute(encode_command(b"EXPIRE", b"nope", b"5"))
        assert response == b":0\r\n"

    def test_ttl_missing_key(self, store):
        response, _ = store.execute(encode_command(b"TTL", b"nope"))
        assert response == b":-2\r\n"


class TestLruEviction:
    def test_unbounded_store_never_evicts(self):
        store = KeyValueStore()
        for i in range(1000):
            store.set(b"k%d" % i, b"v" * 100)
        assert store.stats.evictions == 0

    def test_memory_accounting(self):
        store = KeyValueStore()
        store.set(b"key", b"value")
        used = store.memory_used
        assert used == len(b"key") + len(b"value") + 64
        store.delete(b"key")
        assert store.memory_used == 0

    def test_overwrite_does_not_leak(self):
        store = KeyValueStore()
        store.set(b"k", b"x" * 100)
        store.set(b"k", b"y" * 10)
        assert store.memory_used == len(b"k") + 10 + 64

    def test_eviction_at_capacity(self):
        store = KeyValueStore(max_memory_bytes=1000)
        for i in range(20):
            store.set(b"key%02d" % i, b"v" * 50)
        assert store.stats.evictions > 0
        assert store.memory_used <= 1000

    def test_lru_order_evicts_cold_keys(self):
        store = KeyValueStore(max_memory_bytes=4 * (3 + 10 + 64))
        for name in (b"aaa", b"bbb", b"ccc", b"ddd"):
            store.set(name, b"x" * 10)
        store.get(b"aaa")  # touch: aaa becomes most-recent
        store.set(b"eee", b"x" * 10)  # evicts bbb (the coldest)
        assert store.get(b"aaa")[0] is not None
        assert store.get(b"bbb")[0] is None

    def test_expired_entries_release_memory(self):
        store = KeyValueStore()
        store.set(b"k", b"v" * 100, now=0.0, ttl=1.0)
        store.get(b"k", now=2.0)
        assert store.memory_used == 0

    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=6),
                              st.binary(min_size=1, max_size=30)),
                    min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_memory_never_exceeds_budget(self, operations):
        budget = 600
        store = KeyValueStore(max_memory_bytes=budget)
        for key, value in operations:
            if len(key) + len(value) + 64 <= budget:
                store.set(key, value)
        assert store.memory_used <= budget
