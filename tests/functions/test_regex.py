"""Tests for the regex parser, automata, and multi-pattern engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.regex import (
    MultiPatternMatcher,
    RegexSyntaxError,
    compile_ruleset,
    load_ruleset,
    parse,
)
from repro.functions.regex.parser import Alternate, Concat, Literal, Repeat


class TestParser:
    def test_literal(self):
        node = parse("a")
        assert isinstance(node, Literal)
        assert node.bytes_allowed == frozenset({ord("a")})

    def test_concat(self):
        node = parse("ab")
        assert isinstance(node, Concat)
        assert len(node.parts) == 2

    def test_alternation(self):
        node = parse("a|b|c")
        assert isinstance(node, Alternate)
        assert len(node.options) == 3

    def test_class_with_range(self):
        node = parse("[a-c]")
        assert node.bytes_allowed == frozenset({97, 98, 99})

    def test_negated_class(self):
        node = parse("[^\\x00]")
        assert 0 not in node.bytes_allowed
        assert len(node.bytes_allowed) == 255

    def test_hex_escape(self):
        node = parse("\\xff")
        assert node.bytes_allowed == frozenset({255})

    def test_counted_repeat(self):
        node = parse("a{2,4}")
        assert isinstance(node, Repeat)
        assert (node.minimum, node.maximum) == (2, 4)

    def test_unbounded_repeat(self):
        node = parse("a{3,}")
        assert (node.minimum, node.maximum) == (3, None)

    @pytest.mark.parametrize(
        "bad", ["(", ")", "a{", "[", "a{3,1}", "*a", "\\x5", "a\\", "[]"]
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse(bad)

    def test_dot_matches_everything(self):
        node = parse(".")
        assert len(node.bytes_allowed) == 256


class TestMatcher:
    def match_ends(self, pattern, payload):
        matcher = MultiPatternMatcher([pattern])
        matches, _ = matcher.scan(payload)
        return [end for _, end in matches]

    def test_plain_literal(self):
        assert self.match_ends("abc", b"xxabcxx") == [5]

    def test_multiple_occurrences(self):
        assert self.match_ends("ab", b"abab") == [2, 4]

    def test_alternation(self):
        matcher = MultiPatternMatcher(["cat|dog"])
        matches, _ = matcher.scan(b"hotdog and cats")
        assert [end for _, end in matches] == [6, 14]

    def test_star(self):
        # a b* c : "ac", "abc", "abbc"
        assert self.match_ends("ab*c", b"ac abc abbc") == [2, 6, 11]

    def test_plus_requires_one(self):
        assert self.match_ends("ab+c", b"ac abc") == [6]

    def test_question(self):
        assert self.match_ends("colou?r", b"color colour") == [5, 12]

    def test_class_and_counted(self):
        assert self.match_ends("[0-9]{3}", b"ab 1234 cd") == [6, 7]

    def test_binary_patterns(self):
        matcher = MultiPatternMatcher(["\\xff\\xd8\\xff"])
        matches, _ = matcher.scan(b"\x00\xff\xd8\xff\x00")
        assert matches == [(0, 4)]

    def test_multi_pattern_ids(self):
        matcher = MultiPatternMatcher(["aaa", "bbb"])
        matches, _ = matcher.scan(b"aaabbb")
        ids = {pid for pid, _ in matches}
        assert ids == {0, 1}

    def test_overlapping_patterns_both_report(self):
        matcher = MultiPatternMatcher(["abc", "bcd"])
        matches, _ = matcher.scan(b"abcd")
        assert (0, 3) in matches
        assert (1, 4) in matches

    def test_contains_match_early_exit(self):
        matcher = MultiPatternMatcher(["needle"])
        assert matcher.contains_match(b"hay needle hay")
        assert not matcher.contains_match(b"just hay")

    def test_empty_pattern_list_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternMatcher([])

    @pytest.mark.parametrize("nullable", ["a*", "a?b*", "x*|yz", "(ab)?"])
    def test_nullable_patterns_rejected(self, nullable):
        """Hyperscan semantics: empty-string-matching patterns are errors."""
        with pytest.raises(ValueError, match="empty string"):
            MultiPatternMatcher([nullable])

    def test_stats_count_bytes(self):
        matcher = MultiPatternMatcher(["zz"])
        _, stats = matcher.scan(b"a" * 100)
        assert stats.bytes_scanned == 100
        assert stats.matches == 0

    def test_work_units_kinds(self):
        matcher = MultiPatternMatcher(["ab"])
        _, stats = matcher.scan(b"abab")
        units = stats.work_units()
        assert units.get("dfa_byte") == 4.0
        assert units.get("regex_report") == 2.0

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_agree_with_python_re(self, payload):
        """Literal matching must agree with the stdlib on arbitrary bytes."""
        import re as stdlib_re

        matcher = MultiPatternMatcher(["\\x41\\x42"])  # "AB"
        matches, _ = matcher.scan(payload)
        expected = [m.end() for m in stdlib_re.finditer(b"AB", payload)]
        assert [end for _, end in matches] == expected

    @given(st.binary(min_size=0, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_deep_visits_bounded_by_bytes(self, payload):
        matcher = compile_ruleset("file_image")
        _, stats = matcher.scan(payload)
        assert 0 <= stats.deep_visits <= stats.bytes_scanned


class TestRulesets:
    def test_names_load(self):
        for name in ("file_image", "file_flash", "file_executable"):
            ruleset = load_ruleset(name)
            assert ruleset.patterns
            assert ruleset.seed_fragments

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_ruleset("file_nonsense")

    def test_deterministic(self):
        assert load_ruleset("file_image").patterns == load_ruleset("file_image").patterns

    def test_fragments_trigger_their_ruleset(self):
        for name in ("file_image", "file_flash", "file_executable"):
            ruleset = load_ruleset(name)
            matcher = compile_ruleset(name)
            hits = sum(
                1
                for fragment in ruleset.seed_fragments
                if matcher.contains_match(b"  " + fragment + b"  ")
            )
            # The clear majority of seed fragments must really match.
            assert hits >= len(ruleset.seed_fragments) * 0.7, name

    def test_density_ordering_on_text_traffic(self):
        """file_image must be the densest rule set on ASCII-ish traffic —
        this drives Key Observation 4."""
        payload = (b"GET /index.html HTTP/1.1 host example payload data " * 30)[:1500]
        densities = {}
        for name in ("file_image", "file_flash", "file_executable"):
            _, stats = compile_ruleset(name).scan(payload)
            densities[name] = stats.deep_visits / stats.bytes_scanned
        assert densities["file_image"] > densities["file_flash"]
        assert densities["file_image"] > 3 * densities["file_executable"]
