"""Tests for the Redis-like store and the MICA-style store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.kvstore import (
    KeyValueStore,
    ProtocolError,
    decode_command,
    encode_command,
)
from repro.functions.mica import BUCKET_SLOTS, MicaStore


class TestResp:
    def test_roundtrip(self):
        cmd = encode_command(b"SET", b"key", b"value")
        assert decode_command(cmd) == [b"SET", b"key", b"value"]

    def test_binary_safe(self):
        cmd = encode_command(b"SET", b"k\r\n", b"\x00\xff")
        assert decode_command(cmd) == [b"SET", b"k\r\n", b"\x00\xff"]

    @pytest.mark.parametrize("bad", [b"", b"GET x", b"*1\r\n$5\r\nab\r\n", b"*zz\r\n"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ProtocolError):
            decode_command(bad)


class TestKeyValueStore:
    def test_set_get(self):
        store = KeyValueStore()
        store.set(b"k", b"v")
        value, _ = store.get(b"k")
        assert value == b"v"

    def test_get_missing(self):
        store = KeyValueStore()
        value, _ = store.get(b"nope")
        assert value is None
        assert store.stats.misses == 1

    def test_delete(self):
        store = KeyValueStore()
        store.set(b"k", b"v")
        removed, _ = store.delete(b"k")
        assert removed
        assert len(store) == 0

    def test_ttl_expiry(self):
        store = KeyValueStore()
        store.set(b"k", b"v", now=0.0, ttl=10.0)
        value, _ = store.get(b"k", now=5.0)
        assert value == b"v"
        value, _ = store.get(b"k", now=11.0)
        assert value is None
        assert store.stats.expired == 1

    def test_work_scales_with_value(self):
        store = KeyValueStore()
        small = store.set(b"a", b"x")
        large = store.set(b"b", b"x" * 1000)
        assert large.get("kv_value_byte") == 1000.0
        assert small.get("kv_value_byte") == 1.0

    def test_execute_get_set(self):
        store = KeyValueStore()
        response, _ = store.execute(encode_command(b"SET", b"k", b"hello"))
        assert response == b"+OK\r\n"
        response, _ = store.execute(encode_command(b"GET", b"k"))
        assert response == b"$5\r\nhello\r\n"

    def test_execute_get_missing(self):
        store = KeyValueStore()
        response, _ = store.execute(encode_command(b"GET", b"k"))
        assert response == b"$-1\r\n"

    def test_execute_set_with_ttl(self):
        store = KeyValueStore()
        store.execute(encode_command(b"SET", b"k", b"v", b"EX", b"5"), now=0.0)
        value, _ = store.get(b"k", now=10.0)
        assert value is None

    def test_execute_del(self):
        store = KeyValueStore()
        store.set(b"k", b"v")
        response, _ = store.execute(encode_command(b"DEL", b"k"))
        assert response == b":1\r\n"

    def test_execute_unknown_verb(self):
        store = KeyValueStore()
        with pytest.raises(ProtocolError):
            store.execute(encode_command(b"FLUSHALL"))

    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=8), st.binary(max_size=32)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_semantics(self, operations):
        store = KeyValueStore()
        reference = {}
        for key, value in operations:
            store.set(key, value)
            reference[key] = value
        for key, expected in reference.items():
            got, _ = store.get(key)
            assert got == expected


class TestMica:
    def test_put_get(self):
        store = MicaStore(partitions=4)
        store.put(b"key", b"value")
        value, _ = store.get(b"key")
        assert value == b"value"

    def test_get_missing(self):
        store = MicaStore(partitions=2)
        value, work = store.get(b"missing")
        assert value is None
        assert work.get("hash_probe") == 1.0

    def test_overwrite(self):
        store = MicaStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        value, _ = store.get(b"k")
        assert value == b"v2"

    def test_partition_count_validated(self):
        with pytest.raises(ValueError):
            MicaStore(partitions=0)

    def test_batch_get(self):
        store = MicaStore()
        for i in range(10):
            store.put(b"key%d" % i, b"val%d" % i)
        keys = [b"key3", b"key7", b"keyX"]
        values, work = store.get_batch(keys)
        assert values == [b"val3", b"val7", None]
        assert work.get("hash_probe") == 3.0

    def test_lossy_eviction_under_pressure(self):
        """Tiny index: inserting many keys must evict, not error (MICA's
        lossy mode)."""
        store = MicaStore(partitions=1, buckets_per_partition=2,
                          log_bytes_per_partition=1 << 16)
        count = 2 * BUCKET_SLOTS * 4
        for i in range(count):
            store.put(b"key-%04d" % i, b"v")
        assert store.evictions > 0
        found = sum(
            1 for i in range(count) if store.get(b"key-%04d" % i)[0] is not None
        )
        assert 0 < found < count

    def test_log_wrap_invalidates_old_entries(self):
        store = MicaStore(partitions=1, buckets_per_partition=64,
                          log_bytes_per_partition=1024)
        store.put(b"old", b"x" * 100)
        for i in range(30):
            store.put(b"new%d" % i, b"y" * 100)
        value, _ = store.get(b"old")
        assert value is None  # overwritten by the ring

    def test_record_too_large(self):
        store = MicaStore(partitions=1, log_bytes_per_partition=1 << 12)
        with pytest.raises(ValueError):
            store.put(b"k", b"v" * (1 << 13))

    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=12),
            st.binary(min_size=1, max_size=40),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_big_store_behaves_like_dict(self, mapping):
        store = MicaStore(partitions=4)
        for key, value in mapping.items():
            store.put(key, value)
        for key, expected in mapping.items():
            got, _ = store.get(key)
            assert got == expected
