"""Differential testing: the DFA engine against an independent oracle.

Two oracles: (1) Python's stdlib `re` for the pattern subset both share,
on random patterns and payloads; (2) a tiny backtracking matcher written
here from the same AST, structurally unlike the NFA/DFA pipeline.  Any
divergence is a real engine bug.
"""

import re as stdlib_re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.regex import MultiPatternMatcher, parse
from repro.functions.regex.parser import Alternate, Concat, Literal, Repeat


# -- oracle 2: direct backtracking over the AST -----------------------------

def _match_here(node, payload, position):
    """Yield every end position of a match of ``node`` at ``position``."""
    if isinstance(node, Literal):
        if position < len(payload) and payload[position] in node.bytes_allowed:
            yield position + 1
        return
    if isinstance(node, Concat):
        def rec(parts, at):
            if not parts:
                yield at
                return
            for middle in _match_here(parts[0], payload, at):
                yield from rec(parts[1:], middle)

        yield from rec(list(node.parts), position)
        return
    if isinstance(node, Alternate):
        for option in node.options:
            yield from _match_here(option, payload, position)
        return
    if isinstance(node, Repeat):
        maximum = node.maximum if node.maximum is not None else len(payload) + 1

        def rec(count, at):
            if count >= node.minimum:
                yield at
            if count < maximum:
                for nxt in _match_here(node.node, payload, at):
                    if nxt > at or count < node.minimum:
                        yield from rec(count + 1, nxt)

        yield from rec(0, position)
        return
    raise TypeError(node)


def oracle_match_ends(pattern, payload):
    """Distinct end offsets of *non-empty* matches (search mode).

    The engine, like Hyperscan, never reports zero-length matches — a
    nullable pattern such as ``a*`` "matching" at every offset is useless
    for IDS semantics — so the oracle mirrors that.
    """
    ast = parse(pattern)
    ends = set()
    for start in range(len(payload) + 1):
        for end in _match_here(ast, payload, start):
            if end > start:
                ends.add(end)
    return sorted(ends)


# -- random pattern generation ------------------------------------------------

ATOMS = st.sampled_from(
    ["a", "b", "c", "0", "[ab]", "[a-c]", "[0-9]", "\\x61"]
)
QUANTS = st.sampled_from(["", "*", "+", "?", "{2}", "{1,3}"])


NON_NULLABLE_QUANTS = ("", "+", "{2}", "{1,3}")


@st.composite
def random_pattern(draw):
    """Random patterns that cannot match the empty string (the engine,
    like Hyperscan, rejects nullable patterns)."""
    n = draw(st.integers(min_value=1, max_value=4))
    pieces = []
    anchor = draw(st.integers(0, n - 1))  # one mandatory atom per branch
    for index in range(n):
        atom = draw(ATOMS)
        quant = (
            draw(st.sampled_from(NON_NULLABLE_QUANTS))
            if index == anchor
            else draw(QUANTS)
        )
        pieces.append(atom + quant)
    pattern = "".join(pieces)
    if draw(st.booleans()):
        other = "".join(draw(ATOMS) for _ in range(draw(st.integers(1, 3))))
        pattern = f"{pattern}|{other}"
    return pattern


PAYLOADS = st.binary(max_size=24).map(
    lambda raw: bytes(b % 4 + ord("a") if b % 8 < 6 else b % 10 + ord("0")
                      for b in raw)
)


class TestAgainstBacktrackingOracle:
    @given(random_pattern(), PAYLOADS)
    @settings(max_examples=150, deadline=None)
    def test_same_match_ends(self, pattern, payload):
        engine = MultiPatternMatcher([pattern])
        matches, _ = engine.scan(payload)
        engine_ends = sorted({end for _, end in matches})
        assert engine_ends == oracle_match_ends(pattern, payload)


class TestAgainstStdlibRe:
    @given(random_pattern(), PAYLOADS)
    @settings(max_examples=150, deadline=None)
    def test_same_boolean_verdict(self, pattern, payload):
        engine = MultiPatternMatcher([pattern])
        compiled = stdlib_re.compile(pattern.encode())
        # non-empty matches only (Hyperscan semantics, see oracle note)
        stdlib_found = any(
            m.end() > m.start() for m in compiled.finditer(payload)
        )
        assert engine.contains_match(payload) == stdlib_found

    @given(PAYLOADS)
    @settings(max_examples=60, deadline=None)
    def test_multi_pattern_union_equals_individual(self, payload):
        """Scanning N patterns at once = union of scanning each alone."""
        patterns = ["ab", "[0-9]{2}", "c+a"]
        combined = MultiPatternMatcher(patterns)
        together, _ = combined.scan(payload)
        separately = []
        for index, pattern in enumerate(patterns):
            single = MultiPatternMatcher([pattern])
            found, _ = single.scan(payload)
            separately.extend((index, end) for _, end in found)
        assert sorted(together) == sorted(separately)
