"""Tests for the ESP tunnel datapath."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.ipsec import (
    ICV_BYTES,
    REPLAY_WINDOW,
    IpsecError,
    SecurityAssociation,
    Tunnel,
    decapsulate,
    encapsulate,
)

KEY = b"0123456789abcdef"
IKEY = b"integrity-key"


def make_tunnel():
    return Tunnel.create(spi=0x1001, encryption_key=KEY, integrity_key=IKEY)


class TestEspRoundTrip:
    def test_protect_unprotect(self):
        tunnel = make_tunnel()
        packet, work = tunnel.protect(b"inner ip packet")
        assert work.get("aes_block") > 0
        assert work.get("sha1_block") > 0
        payload, _ = tunnel.unprotect(packet)
        assert payload == b"inner ip packet"

    def test_ciphertext_differs_from_plaintext(self):
        tunnel = make_tunnel()
        packet, _ = tunnel.protect(b"secret secret secret")
        assert b"secret" not in packet

    def test_sequence_numbers_advance(self):
        tunnel = make_tunnel()
        tunnel.protect(b"a")
        tunnel.protect(b"b")
        assert tunnel.outbound.sequence == 2

    def test_same_payload_different_ciphertext(self):
        """CTR nonce = sequence: identical payloads must not repeat."""
        tunnel = make_tunnel()
        first, _ = tunnel.protect(b"hello")
        second, _ = tunnel.protect(b"hello")
        assert first != second

    def test_tampered_packet_rejected(self):
        tunnel = make_tunnel()
        packet, _ = tunnel.protect(b"payload")
        tampered = packet[:10] + bytes([packet[10] ^ 0xFF]) + packet[11:]
        payload, _ = tunnel.unprotect(tampered)
        assert payload is None
        assert tunnel.packets_rejected == 1

    def test_truncated_packet_rejected(self):
        tunnel = make_tunnel()
        payload, _ = tunnel.unprotect(b"tiny")
        assert payload is None

    def test_wrong_spi_rejected(self):
        sender = Tunnel.create(0x1001, KEY, IKEY)
        receiver = Tunnel.create(0x2002, KEY, IKEY)
        packet, _ = sender.protect(b"x")
        payload, _ = receiver.unprotect(packet)
        assert payload is None

    def test_key_validation(self):
        with pytest.raises(IpsecError):
            SecurityAssociation(1, b"short", IKEY)
        with pytest.raises(IpsecError):
            SecurityAssociation(1, KEY, b"")

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, payload):
        tunnel = make_tunnel()
        packet, _ = tunnel.protect(payload)
        restored, _ = tunnel.unprotect(packet)
        assert restored == payload


class TestAntiReplay:
    def test_replayed_packet_rejected(self):
        tunnel = make_tunnel()
        packet, _ = tunnel.protect(b"once")
        assert tunnel.unprotect(packet)[0] == b"once"
        assert tunnel.unprotect(packet)[0] is None
        assert tunnel.inbound.replays_rejected == 1

    def test_out_of_order_within_window_accepted(self):
        tunnel = make_tunnel()
        packets = [tunnel.protect(b"p%d" % i)[0] for i in range(5)]
        assert tunnel.unprotect(packets[4])[0] == b"p4"
        assert tunnel.unprotect(packets[1])[0] == b"p1"  # late but fresh
        assert tunnel.unprotect(packets[1])[0] is None  # replay

    def test_too_old_rejected(self):
        tunnel = make_tunnel()
        packets = [tunnel.protect(b"x")[0] for _ in range(REPLAY_WINDOW + 5)]
        assert tunnel.unprotect(packets[-1])[0] is not None
        # the first packet is now beyond the 64-entry window
        assert tunnel.unprotect(packets[0])[0] is None

    def test_window_bit_tracking(self):
        sa = SecurityAssociation(1, KEY, IKEY)
        assert sa.check_and_update_replay(3)
        assert sa.check_and_update_replay(1)
        assert not sa.check_and_update_replay(1)
        assert sa.check_and_update_replay(2)
        assert not sa.check_and_update_replay(3)

    def test_sequence_zero_invalid(self):
        sa = SecurityAssociation(1, KEY, IKEY)
        assert not sa.check_and_update_replay(0)


class TestWorkAccounting:
    def test_work_scales_with_payload(self):
        tunnel = make_tunnel()
        _, small = tunnel.protect(b"x" * 64)
        _, large = tunnel.protect(b"x" * 1024)
        assert large.get("aes_block") > 10 * small.get("aes_block")

    def test_decapsulation_costs_crypto_too(self):
        tunnel = make_tunnel()
        packet, _ = tunnel.protect(b"y" * 256)
        _, work = tunnel.unprotect(packet)
        assert work.get("aes_block") >= 16
        assert work.get("sha1_block") > 0

    def test_rejected_packet_still_pays_tag_check(self):
        """The gateway verifies before decrypting: a forged packet costs
        SHA-1 but no AES — the DoS-resistance ordering."""
        tunnel = make_tunnel()
        packet, _ = tunnel.protect(b"z" * 256)
        bad = packet[:-1] + bytes([packet[-1] ^ 1])
        _, work = tunnel.unprotect(bad)
        assert work.get("sha1_block") > 0
        assert work.get("aes_block") == 0
