"""Known-answer and property tests for AES-128, SHA-1, and RSA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.crypto import aes, rsa, sha1


class TestAes:
    def test_fips197_vector(self):
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        ciphertext = aes.encrypt_block(plaintext, aes.expand_key(key))
        assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_decrypt_inverts_encrypt(self):
        key = b"0123456789abcdef"
        round_keys = aes.expand_key(key)
        block = b"A" * 16
        assert aes.decrypt_block(aes.encrypt_block(block, round_keys), round_keys) == block

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            aes.expand_key(b"short")

    def test_block_length_enforced(self):
        with pytest.raises(ValueError):
            aes.encrypt_block(b"short", aes.expand_key(b"0" * 16))

    def test_ctr_roundtrip(self):
        key = b"k" * 16
        data = b"counter mode encrypts arbitrary lengths!"
        ciphertext, work = aes.encrypt_ctr(data, key, nonce=7)
        plaintext, _ = aes.encrypt_ctr(ciphertext, key, nonce=7)
        assert plaintext == data
        assert work.get("aes_block") == 3.0  # ceil(41 / 16)

    def test_ctr_nonce_matters(self):
        key = b"k" * 16
        a, _ = aes.encrypt_ctr(b"same data", key, nonce=1)
        b, _ = aes.encrypt_ctr(b"same data", key, nonce=2)
        assert a != b

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, key, block):
        round_keys = aes.expand_key(key)
        assert aes.decrypt_block(aes.encrypt_block(block, round_keys), round_keys) == block


class TestSha1:
    @pytest.mark.parametrize(
        "message,expected",
        [
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
        ],
    )
    def test_nist_vectors(self, message, expected):
        assert sha1.hexdigest(message) == expected

    def test_million_a(self):
        digest = sha1.hexdigest(b"a" * 10_000)  # scaled-down long-message check
        import hashlib

        assert digest == hashlib.sha1(b"a" * 10_000).hexdigest()

    def test_block_work_accounting(self):
        _, work = sha1.digest(b"x" * 200)
        # 200 bytes + padding = 4 blocks of 64
        assert work.get("sha1_block") == 4.0

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_matches_hashlib(self, message):
        import hashlib

        assert sha1.hexdigest(message) == hashlib.sha1(message).hexdigest()


class TestRsa:
    @pytest.fixture(scope="class")
    def key(self):
        return rsa.generate_key(512, np.random.default_rng(7))

    def test_roundtrip(self, key):
        message = 0xDEADBEEF
        ciphertext, _ = rsa.encrypt(message, key)
        plaintext, _ = rsa.decrypt(ciphertext, key)
        assert plaintext == message

    def test_sign_verify(self, key):
        digest = 0x123456789ABCDEF
        signature, _ = rsa.sign(digest, key)
        ok, _ = rsa.verify(signature, digest, key)
        assert ok

    def test_verify_rejects_tampered(self, key):
        signature, _ = rsa.sign(42, key)
        ok, _ = rsa.verify(signature + 1, 42, key)
        assert not ok

    def test_message_range_enforced(self, key):
        with pytest.raises(ValueError):
            rsa.encrypt(key.n, key)

    def test_key_structure(self, key):
        assert key.p * key.q == key.n
        assert key.p != key.q
        assert (key.e * key.d) % ((key.p - 1) * (key.q - 1)) == 1

    def test_prime_generation_bits(self):
        rng = np.random.default_rng(11)
        prime = rsa.generate_prime(128, rng)
        assert prime.bit_length() == 128
        assert prime % 2 == 1

    def test_modexp_work_scales_with_bits(self):
        small = rsa.modexp_work(2**64 - 1, 512).get("rsa_limb_mul")
        large = rsa.modexp_work(2**64 - 1, 2048).get("rsa_limb_mul")
        assert large == pytest.approx(small * 16)  # (2048/512)^2 limbs

    def test_decrypt_work_uses_crt(self, key):
        """CRT halves should cost ~1/4 each vs a full-width exponentiation."""
        _, crt_work = rsa.decrypt(123, key)
        full_work = rsa.modexp_work(key.d, key.bits)
        assert crt_work.get("rsa_limb_mul") < full_work.get("rsa_limb_mul")

    @given(st.integers(min_value=1, max_value=2**60))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, message):
        key = rsa.generate_key(256, np.random.default_rng(3))
        ciphertext, _ = rsa.encrypt(message % key.n, key)
        plaintext, _ = rsa.decrypt(ciphertext, key)
        assert plaintext == message % key.n
