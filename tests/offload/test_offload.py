"""Tests for the offload advisor and the load balancer (§5.3)."""

import numpy as np
import pytest

from repro.experiments.measurement import measure_operating_point
from repro.experiments.profiles import get_profile
from repro.core.rng import RandomStreams
from repro.offload import (
    BalancerConfig,
    hardware_balancer,
    placement_table,
    predict_platform,
    recommend,
    simulate_balancer,
    snic_cpu_balancer,
)


class TestAdvisor:
    def test_prediction_tracks_measurement(self):
        """Strategy 2: the analytic predictor must agree with the measured
        knee within ~35 % — that is what makes it usable for placement."""
        streams = RandomStreams(9)
        for key, platform in [("redis:a", "host"), ("udp:64", "snic-cpu"),
                              ("nat:10k", "host")]:
            profile = get_profile(key, samples=60)
            predicted = predict_platform(profile, platform).capacity_rps
            measured = measure_operating_point(profile, platform, streams, 6000)
            assert predicted == pytest.approx(measured.capacity_rps, rel=0.35), key

    def test_rem_placement_depends_on_ruleset(self):
        """KO4 via the advisor: image -> accelerator; with a tight SLO the
        executable rule set stays on the host (the accel batching latency
        violates it)."""
        image = recommend(get_profile("rem:file_image", samples=60))
        assert image.platform == "snic-accel"
        exe_tight = recommend(
            get_profile("rem:file_executable", samples=60),
            required_rps=5e6, slo_p99=10e-6,
        )
        assert exe_tight.platform == "host"

    def test_rate_requirement_forces_host(self):
        """The accelerator caps near 50 Gb/s; demanding more forces host
        processing for the cheap rule sets."""
        profile = get_profile("rem:file_executable", samples=60)
        decision = recommend(profile, required_rps=10e6)  # ~66 Gb/s of pcap mix
        assert decision.platform == "host"

    def test_infeasible_falls_back_to_fastest(self):
        profile = get_profile("udp:64", samples=20)
        decision = recommend(profile, required_rps=1e9)
        assert decision.platform == "host"
        assert "nothing meets" in decision.reason

    def test_prefer_offload_flag(self):
        profile = get_profile("fio:read", samples=40)
        offloaded = recommend(profile, prefer_offload=True)
        assert offloaded.platform == "snic-cpu"

    def test_placement_table_renders(self):
        profiles = [get_profile(k, samples=40) for k in ("redis:a", "rem:file_image")]
        text = placement_table(profiles)
        assert "redis:a" in text and "rem:file_image" in text


class TestLoadBalancer:
    SNIC_SERVICE = 1.2e-6
    HOST_SERVICE = 0.7e-6

    def _run(self, config, rate=9e6, n=40_000, seed=0):
        return simulate_balancer(config, rate, n, np.random.default_rng(seed))

    def test_underload_stays_on_snic(self):
        config = hardware_balancer(self.SNIC_SERVICE, self.HOST_SERVICE)
        outcome = self._run(config, rate=1e6)
        assert outcome.host_fraction < 0.02
        assert outcome.loss_fraction == 0.0

    def test_overload_spills_to_host(self):
        config = hardware_balancer(self.SNIC_SERVICE, self.HOST_SERVICE)
        outcome = self._run(config, rate=9e6)
        assert outcome.host_fraction > 0.1

    def test_snic_cpu_balancer_monitoring_tax(self):
        """§5.3: monitoring at high rates consumes a large share of the
        SNIC CPU."""
        config = snic_cpu_balancer(self.SNIC_SERVICE, self.HOST_SERVICE)
        outcome = self._run(config, rate=9e6)
        assert outcome.snic_monitor_utilization > 0.25

    def test_hardware_balancer_beats_snic_cpu_on_p99(self):
        """§5.3: the CPU implementation cannot redirect fast enough."""
        cpu = self._run(snic_cpu_balancer(self.SNIC_SERVICE, self.HOST_SERVICE))
        hw = self._run(hardware_balancer(self.SNIC_SERVICE, self.HOST_SERVICE))
        assert hw.p99_latency_s < 0.7 * cpu.p99_latency_s

    def test_reaction_delay_hurts_tail(self):
        slow = BalancerConfig(
            self.SNIC_SERVICE, self.HOST_SERVICE, reaction_delay_s=200e-6
        )
        fast = BalancerConfig(
            self.SNIC_SERVICE, self.HOST_SERVICE, reaction_delay_s=0.0
        )
        assert (
            self._run(slow, rate=8e6).p99_latency_s
            > self._run(fast, rate=8e6).p99_latency_s
        )

    def test_drops_only_when_both_paths_full(self):
        config = hardware_balancer(
            self.SNIC_SERVICE, self.HOST_SERVICE,
            snic_queue_limit_s=20e-6, host_queue_limit_s=20e-6,
        )
        outcome = self._run(config, rate=2.5e7)
        assert outcome.loss_fraction > 0.0

    def test_conservation(self):
        config = hardware_balancer(self.SNIC_SERVICE, self.HOST_SERVICE)
        outcome = self._run(config, rate=9e6, n=10_000)
        assert outcome.sent_to_snic + outcome.sent_to_host + outcome.dropped == 10_000
