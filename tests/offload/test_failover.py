"""Tests for SNIC→host failover and load-balancer drop accounting."""

import numpy as np
import pytest

from repro.faults import FaultSpec, FaultTimeline, SnicHealth
from repro.offload import (
    ROUTE_DROP,
    ROUTE_HOST,
    ROUTE_SNIC,
    BalancerConfig,
    hardware_balancer,
    simulate_balancer,
    simulate_failover,
    snic_cpu_balancer,
)

SNIC_SERVICE = 1.2e-6
HOST_SERVICE = 0.7e-6


def outage_health(start, end, horizon):
    specs = [FaultSpec.one_shot("outage", "snic", start_s=start,
                                duration_s=end - start, kind="outage")]
    return SnicHealth(FaultTimeline(specs, horizon), target="snic")


def degrade_health(start, end, horizon, severity):
    specs = [FaultSpec.one_shot("hot", "snic", start_s=start,
                                duration_s=end - start, kind="degrade",
                                severity=severity)]
    return SnicHealth(FaultTimeline(specs, horizon), target="snic")


class TestDropAccounting:
    """Satellite: sent_to_snic + sent_to_host + dropped == offered, for
    every config shape including nonzero monitor and reaction delay."""

    CONFIGS = {
        "hardware": hardware_balancer(SNIC_SERVICE, HOST_SERVICE),
        "snic-cpu": snic_cpu_balancer(SNIC_SERVICE, HOST_SERVICE),
        "monitor-only": BalancerConfig(SNIC_SERVICE, HOST_SERVICE,
                                       monitor_cost_s=600 / 2.0e9),
        "stale-only": BalancerConfig(SNIC_SERVICE, HOST_SERVICE,
                                     reaction_delay_s=200e-6),
        "tiny-queues": BalancerConfig(SNIC_SERVICE, HOST_SERVICE,
                                      snic_queue_limit_s=20e-6,
                                      host_queue_limit_s=20e-6,
                                      monitor_cost_s=600 / 2.0e9,
                                      reaction_delay_s=100e-6),
    }

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @pytest.mark.parametrize("rate", [1e6, 9e6, 2.5e7])
    def test_conservation(self, name, rate):
        n = 20_000
        outcome = simulate_balancer(self.CONFIGS[name], rate, n,
                                    np.random.default_rng(7))
        assert outcome.sent_to_snic + outcome.sent_to_host + outcome.dropped == n

    def test_conservation_under_faults(self):
        n = 20_000
        rate = 6e6
        health = outage_health(1e-3, 2e-3, n / rate)
        run = simulate_failover(snic_cpu_balancer(SNIC_SERVICE, HOST_SERVICE),
                                rate, n, np.random.default_rng(7),
                                snic_health=health)
        o = run.outcome
        assert o.sent_to_snic + o.sent_to_host + o.dropped == n
        assert int(np.sum(run.routes == ROUTE_SNIC)) == o.sent_to_snic
        assert int(np.sum(run.routes == ROUTE_HOST)) == o.sent_to_host
        assert int(np.sum(run.routes == ROUTE_DROP)) == o.dropped


class TestFailoverEquivalence:
    def test_no_health_matches_classic_balancer(self):
        """simulate_failover without a health model must be numerically
        identical to simulate_balancer (same draws, same arithmetic)."""
        config = snic_cpu_balancer(SNIC_SERVICE, HOST_SERVICE)
        classic = simulate_balancer(config, 6e6, 15_000,
                                    np.random.default_rng(3))
        failover = simulate_failover(config, 6e6, 15_000,
                                     np.random.default_rng(3)).outcome
        assert classic == failover


class TestFailover:
    RATE = 5e6  # below SNIC capacity (8 cores / 1.2 us ≈ 6.7 M rps)
    N = 60_000

    def _run(self, config, health):
        return simulate_failover(config, self.RATE, self.N,
                                 np.random.default_rng(11),
                                 snic_health=health, deadline_s=1e-3)

    def test_outage_triggers_failover_and_failback(self):
        horizon = self.N / self.RATE
        t0, t1 = 0.4 * horizon, 0.6 * horizon
        run = self._run(snic_cpu_balancer(SNIC_SERVICE, HOST_SERVICE),
                        outage_health(t0, t1, horizon))
        # Steady state lives on the SNIC; the outage pushes it to the host.
        before = run.host_fraction_between(0.0, t0)
        during = run.host_fraction_between(t0, t1)
        after = run.host_fraction_between(t1 + 0.1 * horizon, horizon)
        assert before < 0.05
        assert during > 0.90
        assert after < 0.10  # failed back

    def test_outage_drops_bounded_by_reaction_window(self):
        horizon = self.N / self.RATE
        t0, t1 = 0.4 * horizon, 0.6 * horizon
        config = snic_cpu_balancer(SNIC_SERVICE, HOST_SERVICE)
        run = self._run(config, outage_health(t0, t1, horizon))
        # Drops happen only until the stale observation catches up: about
        # reaction_delay worth of traffic, with headroom for queue effects.
        assert 0 < run.outcome.dropped < 3 * self.RATE * config.reaction_delay_s
        assert run.drops_between(0.0, t0) == 0
        assert run.availability > 0.98

    def test_hardware_balancer_fails_over_with_zero_drops(self):
        horizon = self.N / self.RATE
        t0, t1 = 0.4 * horizon, 0.6 * horizon
        run = self._run(hardware_balancer(SNIC_SERVICE, HOST_SERVICE),
                        outage_health(t0, t1, horizon))
        assert run.outcome.dropped == 0
        # The tail of the window (remaining head delay below the redirect
        # threshold) legitimately queues behind the recovering path.
        assert run.host_fraction_between(t0, t1) > 0.95

    def test_recovery_time_reported(self):
        horizon = self.N / self.RATE
        t0, t1 = 0.4 * horizon, 0.6 * horizon
        run = self._run(snic_cpu_balancer(SNIC_SERVICE, HOST_SERVICE),
                        outage_health(t0, t1, horizon))
        times = run.recovery_times_s()
        assert len(times) == 1
        assert 0.0 <= times[0] < 0.2 * horizon

    def test_degraded_clock_spills_partially(self):
        horizon = self.N / self.RATE
        t0, t1 = 0.3 * horizon, 0.7 * horizon
        run = self._run(hardware_balancer(SNIC_SERVICE, HOST_SERVICE),
                        degrade_health(t0, t1, horizon, severity=3.0))
        during = run.host_fraction_between(t0, t1)
        before = run.host_fraction_between(0.0, t0)
        # Throttled (not dead): some traffic spills, the path keeps serving.
        assert during > before
        assert 0.05 < during < 1.0
        assert int(np.sum((run.routes == ROUTE_SNIC)
                          & (run.arrivals >= t0) & (run.arrivals < t1))) > 0

    def test_availability_accounts_for_deadline(self):
        horizon = self.N / self.RATE
        health = outage_health(0.4 * horizon, 0.6 * horizon, horizon)
        config = snic_cpu_balancer(SNIC_SERVICE, HOST_SERVICE)
        strict = simulate_failover(config, self.RATE, self.N,
                                   np.random.default_rng(11),
                                   snic_health=health, deadline_s=5e-6)
        loose = simulate_failover(config, self.RATE, self.N,
                                  np.random.default_rng(11),
                                  snic_health=health, deadline_s=1.0)
        assert strict.availability <= loose.availability
