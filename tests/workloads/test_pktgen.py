"""Tests for the packet generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import pktgen


class TestConstantSizeStream:
    def test_offered_rate_matches(self):
        rng = np.random.default_rng(0)
        sample = pktgen.constant_size_stream(1e6, 512, 20_000, rng)
        measured = len(sample) / sample.duration
        assert measured == pytest.approx(1e6, rel=0.05)

    def test_paced_arrivals_are_uniform(self):
        rng = np.random.default_rng(0)
        sample = pktgen.constant_size_stream(100.0, 64, 10, rng, poisson=False)
        gaps = np.diff(sample.arrivals)
        assert gaps == pytest.approx(np.full(9, 0.01))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            pktgen.constant_size_stream(0, 64, 10, rng)
        with pytest.raises(ValueError):
            pktgen.constant_size_stream(10, 0, 10, rng)

    def test_gbps_stream_hits_target(self):
        rng = np.random.default_rng(1)
        sample = pktgen.gbps_stream(10.0, 1024, 20_000, rng)
        assert sample.offered_gbps() == pytest.approx(10.0, rel=0.05)


class TestPcapMix:
    def test_size_distribution(self):
        rng = np.random.default_rng(2)
        sample = pktgen.pcap_mix_stream(10.0, 50_000, rng)
        sizes, counts = np.unique(sample.sizes, return_counts=True)
        assert set(sizes) <= set(pktgen.PCAP_MIX_SIZES)
        # the two dominant classes: 64 B and MTU
        fractions = dict(zip(sizes, counts / counts.sum()))
        assert fractions[64] == pytest.approx(0.30, abs=0.02)
        assert fractions[1500] == pytest.approx(0.30, abs=0.02)

    def test_target_rate(self):
        rng = np.random.default_rng(3)
        sample = pktgen.pcap_mix_stream(20.0, 50_000, rng)
        assert sample.offered_gbps() == pytest.approx(20.0, rel=0.08)


class TestTraceDriven:
    def test_follows_rate_series(self):
        rng = np.random.default_rng(4)
        series = [1.0, 4.0, 1.0]
        sample = pktgen.trace_driven_stream(series, 1.0, 1500, rng)
        counts = [
            ((sample.arrivals >= i) & (sample.arrivals < i + 1)).sum()
            for i in range(3)
        ]
        assert counts[1] > 2.5 * counts[0]

    def test_zero_intervals_skipped(self):
        rng = np.random.default_rng(5)
        sample = pktgen.trace_driven_stream([0.0, 1.0], 1.0, 1500, rng)
        assert (sample.arrivals >= 1.0).all()

    def test_empty_trace(self):
        rng = np.random.default_rng(6)
        sample = pktgen.trace_driven_stream([], 1.0, 1500, rng)
        assert len(sample) == 0

    def test_max_packets_cap(self):
        rng = np.random.default_rng(7)
        sample = pktgen.trace_driven_stream([50.0], 1.0, 64, rng,
                                            max_packets_per_interval=100)
        assert len(sample) <= 100


class TestPayloadStream:
    def test_sizes_respected(self):
        rng = np.random.default_rng(8)
        sample = pktgen.pcap_mix_stream(10.0, 200, rng)
        payloads = list(pktgen.payload_stream(sample, rng))
        assert [len(p) for p in payloads] == [int(s) for s in sample.sizes]

    def test_seeding_injects_fragments(self):
        rng = np.random.default_rng(9)
        sample = pktgen.gbps_stream(10.0, 1024, 400, rng)
        fragment = b"\xde\xad\xbe\xef\xf0\x0d"
        payloads = list(
            pktgen.payload_stream(
                sample, rng, seed_fragments=[fragment], seed_probability=0.5
            )
        )
        hits = sum(1 for p in payloads if fragment in p)
        assert 100 < hits < 300

    def test_no_seeding_by_default(self):
        rng = np.random.default_rng(10)
        sample = pktgen.gbps_stream(10.0, 256, 100, rng)
        fragment = b"\xde\xad\xbe\xef\xf0\x0d"
        payloads = list(pktgen.payload_stream(sample, rng))
        assert not any(fragment in p for p in payloads)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_text_fraction_bounds(self, text_fraction):
        rng = np.random.default_rng(11)
        sample = pktgen.gbps_stream(10.0, 128, 50, rng)
        payloads = list(pktgen.payload_stream(sample, rng, text_fraction=text_fraction))
        assert len(payloads) == 50
