"""Tests for YCSB generation, traces, and corpora."""

import numpy as np
import pytest

from repro.workloads import (
    WORKLOADS,
    ZipfianGenerator,
    constant_trace,
    document_corpus,
    hyperscaler_trace,
    load_phase,
    make_compression_input,
    query_stream,
    run_phase,
    summarize,
)
from repro.workloads.ycsb import WorkloadSpec, operation_mix


class TestYcsb:
    def test_workload_letters(self):
        assert WORKLOADS["a"].read_fraction == 0.5
        assert WORKLOADS["b"].read_fraction == 0.95
        assert WORKLOADS["c"].read_fraction == 1.0

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", read_fraction=0.5, update_fraction=0.2)

    def test_load_phase_covers_all_records(self):
        spec = WorkloadSpec("t", 1.0, 0.0, records=100, operations=10)
        rng = np.random.default_rng(0)
        operations = list(load_phase(spec, rng))
        assert len(operations) == 100
        assert len({op.key for op in operations}) == 100
        assert all(len(op.value) == spec.value_bytes for op in operations)

    def test_run_phase_mix(self):
        spec = WorkloadSpec("t", 0.95, 0.05, records=1000, operations=4000)
        rng = np.random.default_rng(1)
        operations = list(run_phase(spec, rng))
        reads, updates = operation_mix(operations)
        assert reads == pytest.approx(0.95, abs=0.02)

    def test_zipfian_skew(self):
        rng = np.random.default_rng(2)
        zipf = ZipfianGenerator(1000, rng)
        draws = [zipf.next() for _ in range(20_000)]
        top = sum(1 for d in draws if d < 10)
        assert top / len(draws) > 0.25  # heavy head

    def test_zipfian_range(self):
        rng = np.random.default_rng(3)
        zipf = ZipfianGenerator(50, rng)
        draws = [zipf.next() for _ in range(5000)]
        assert min(draws) >= 0
        assert max(draws) <= 50

    def test_zipfian_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, np.random.default_rng(0))


class TestTraces:
    def test_average_matches_table4(self):
        trace = hyperscaler_trace(duration_s=1800.0)
        assert trace.average_gbps() == pytest.approx(0.76, rel=1e-6)

    def test_bursts_exist(self):
        trace = hyperscaler_trace(duration_s=3600.0)
        assert trace.peak_gbps() > 4 * trace.average_gbps()

    def test_deterministic_per_seed(self):
        a = hyperscaler_trace(duration_s=600.0, seed=5)
        b = hyperscaler_trace(duration_s=600.0, seed=5)
        assert (a.gbps == b.gbps).all()

    def test_seed_changes_trace(self):
        a = hyperscaler_trace(duration_s=600.0, seed=5)
        b = hyperscaler_trace(duration_s=600.0, seed=6)
        assert not (a.gbps == b.gbps).all()

    def test_scaled_to_average(self):
        trace = hyperscaler_trace(duration_s=600.0).scaled_to_average(5.0)
        assert trace.average_gbps() == pytest.approx(5.0)

    def test_constant_trace(self):
        trace = constant_trace(2.0, 10.0)
        assert trace.average_gbps() == 2.0
        assert trace.peak_gbps() == 2.0

    def test_summary_keys(self):
        stats = summarize(hyperscaler_trace(duration_s=300.0))
        assert {"average_gbps", "peak_gbps", "p50_gbps", "p99_gbps", "duration_s"} <= set(stats)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            hyperscaler_trace(duration_s=0.1, interval_s=1.0)


class TestCorpus:
    def test_text_compresses_better_than_app(self):
        from repro.functions.compression import deflate

        text = make_compression_input("txt", 8192)
        app = make_compression_input("app", 8192)
        assert deflate.compress(text, 6).ratio > deflate.compress(app, 6).ratio

    def test_exact_sizes(self):
        assert len(make_compression_input("txt", 5000)) == 5000
        assert len(make_compression_input("app", 5000)) == 5000

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_compression_input("pdf", 100)

    def test_document_corpus_shape(self):
        rng = np.random.default_rng(0)
        docs = document_corpus(100, rng)
        assert len(docs) == 100
        words = [len(d.split()) for d in docs]
        assert 5 <= np.mean(words) <= 15

    def test_query_stream(self):
        rng = np.random.default_rng(1)
        queries = query_stream(20, rng, terms_per_query=4)
        assert len(queries) == 20
        assert all(len(q.split()) == 4 for q in queries)

    def test_queries_hit_corpus_vocabulary(self):
        rng = np.random.default_rng(2)
        docs = document_corpus(200, rng)
        vocabulary = set(" ".join(docs).split())
        queries = query_stream(30, np.random.default_rng(3))
        hits = sum(1 for q in queries for t in q.split() if t in vocabulary)
        assert hits > 10
