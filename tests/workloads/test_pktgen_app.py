"""Tests for the DPDK-Pktgen application model."""

import pytest

from repro.core import Simulator
from repro.workloads.pktgen_app import CLIENT_CORE_GBPS, PktgenApp, PktgenError


def make_app(sim, ports=1, cores=8):
    app = PktgenApp(sim, ports=ports, client_cores=cores)
    received = []
    for port in range(ports):
        app.attach(port, received.append)
    return app, received


class TestConsole:
    def test_set_rate(self):
        sim = Simulator()
        app, _ = make_app(sim)
        assert "rate 40.0%" in app.command("set 0 rate 40")
        assert app.configs[0].rate_percent == 40.0

    def test_set_size(self):
        sim = Simulator()
        app, _ = make_app(sim)
        app.command("set 0 size 1500")
        assert app.configs[0].size_bytes == 1500

    def test_appendix_workflow(self):
        """The artifact's exact sequence: set rate, start, stop."""
        sim = Simulator()
        app, received = make_app(sim)
        app.command("set 0 rate 10")
        app.command("set 0 size 1500")
        app.command("start 0")
        sim.run(until=1e-3)
        app.command("stop 0")
        sim.run(until=2e-3)
        assert len(received) > 100
        assert app.stats[0].tx_packets == len(received)

    @pytest.mark.parametrize("bad", [
        "", "warp 9", "set 0 rate 0", "set 0 rate 150", "set 0 size 10",
        "set 9 rate 50", "start 9", "set 0 flux 1",
    ])
    def test_bad_commands_rejected(self, bad):
        sim = Simulator()
        app, _ = make_app(sim)
        with pytest.raises(PktgenError):
            app.command(bad)

    def test_start_without_sink(self):
        sim = Simulator()
        app = PktgenApp(sim)
        with pytest.raises(PktgenError):
            app.command("start 0")


class TestPacing:
    def test_rate_percent_scales_pps(self):
        sim = Simulator()
        app, received = make_app(sim)
        app.command("set 0 size 1500")
        app.command("set 0 rate 10")  # 10% of line rate at MTU
        app.command("start 0")
        sim.run(until=5e-3)
        app.command("stop 0")
        measured_gbps = app.stats[0].tx_gbps()
        assert measured_gbps == pytest.approx(10.0, rel=0.15)

    def test_client_cpu_ceiling(self):
        """§3.4: one client core cannot exceed ~70 Gb/s."""
        sim = Simulator()
        app, _ = make_app(sim, cores=1)
        app.command("set 0 size 1500")
        app.command("set 0 rate 100")
        pps = app.effective_pps(0)
        gbps = pps * 1500 * 8 / 1e9
        assert gbps <= CLIENT_CORE_GBPS * 1.01

    def test_eight_cores_reach_line_rate(self):
        sim = Simulator()
        app, _ = make_app(sim, cores=8)
        app.command("set 0 size 1500")
        pps = app.effective_pps(0)
        gbps = pps * (1500 + 20) * 8 / 1e9
        assert gbps == pytest.approx(100.0, rel=0.05)

    def test_stop_halts_emission(self):
        sim = Simulator()
        app, received = make_app(sim)
        app.command("set 0 rate 50")
        app.command("start 0")
        sim.run(until=1e-4)
        app.command("stop 0")
        count = len(received)
        sim.run(until=1e-3)
        assert len(received) == count

    def test_restart_resets_stats(self):
        sim = Simulator()
        app, received = make_app(sim)
        app.command("set 0 rate 50")
        app.command("start 0")
        sim.run(until=1e-4)
        app.command("stop 0")
        first = app.stats[0].tx_packets
        app.command("start 0")
        sim.run(until=2e-4)
        app.command("stop 0")
        assert app.stats[0].tx_packets < first + len(received)

    def test_multi_port_independent(self):
        sim = Simulator()
        app = PktgenApp(sim, ports=2)
        a, b = [], []
        app.attach(0, a.append)
        app.attach(1, b.append)
        app.command("set 0 rate 1")
        app.command("set 1 rate 10")
        app.command("start 0")
        app.command("start 1")
        sim.run(until=1e-4)
        assert len(b) > 3 * len(a)

    def test_stats_page(self):
        sim = Simulator()
        app, _ = make_app(sim)
        app.command("set 0 rate 5")
        app.command("start 0")
        sim.run(until=1e-4)
        app.command("stop 0")
        page = app.page_stats()
        assert "port 0" in page and "Gb/s" in page
