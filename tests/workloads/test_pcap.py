"""Tests for the PCAP container and capture synthesis."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import pcap, pktgen


def make_records(n=5, size=100):
    return [
        pcap.PcapRecord(timestamp_s=i * 0.001, frame=bytes([i % 256]) * size,
                        original_length=size)
        for i in range(n)
    ]


class TestContainer:
    def test_roundtrip(self):
        buffer = io.BytesIO()
        records = make_records()
        assert pcap.write_pcap(buffer, records) == 5
        buffer.seek(0)
        restored = list(pcap.read_pcap(buffer))
        assert len(restored) == 5
        for original, loaded in zip(records, restored):
            assert loaded.frame == original.frame
            assert loaded.timestamp_s == pytest.approx(original.timestamp_s, abs=1e-6)
            assert loaded.original_length == original.original_length

    def test_global_header_fields(self):
        buffer = io.BytesIO()
        pcap.write_pcap(buffer, [])
        raw = buffer.getvalue()
        assert len(raw) == 24
        assert raw[:4] == b"\xd4\xc3\xb2\xa1"  # little-endian magic

    def test_snaplen_truncates_capture(self):
        buffer = io.BytesIO()
        record = pcap.PcapRecord(0.0, b"x" * 200, original_length=200)
        pcap.write_pcap(buffer, [record], snaplen=64)
        buffer.seek(0)
        loaded = next(pcap.read_pcap(buffer))
        assert loaded.captured_length == 64
        assert loaded.original_length == 200

    def test_bad_magic_rejected(self):
        with pytest.raises(pcap.PcapError):
            list(pcap.read_pcap(io.BytesIO(b"\x00" * 24)))

    def test_truncated_header_rejected(self):
        with pytest.raises(pcap.PcapError):
            list(pcap.read_pcap(io.BytesIO(b"\xd4\xc3")))

    def test_truncated_record_rejected(self):
        buffer = io.BytesIO()
        pcap.write_pcap(buffer, make_records(1))
        data = buffer.getvalue()[:-10]
        with pytest.raises(pcap.PcapError):
            list(pcap.read_pcap(io.BytesIO(data)))

    def test_microsecond_rollover(self):
        buffer = io.BytesIO()
        record = pcap.PcapRecord(1.9999996, b"x", 1)
        pcap.write_pcap(buffer, [record])
        buffer.seek(0)
        loaded = next(pcap.read_pcap(buffer))
        assert loaded.timestamp_s == pytest.approx(2.0, abs=1e-6)

    @given(st.lists(st.tuples(st.floats(0, 100), st.binary(min_size=1, max_size=80)),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, items):
        records = [
            pcap.PcapRecord(timestamp_s=t, frame=f, original_length=len(f))
            for t, f in items
        ]
        buffer = io.BytesIO()
        pcap.write_pcap(buffer, records)
        buffer.seek(0)
        restored = list(pcap.read_pcap(buffer))
        assert [r.frame for r in restored] == [r.frame for r in records]


class TestSynthesis:
    def test_capture_matches_sample(self):
        rng = np.random.default_rng(0)
        sample = pktgen.pcap_mix_stream(5.0, 200, rng)
        records = pcap.synthesize_capture(sample, rng)
        assert len(records) == 200
        # frames = payload + 42 bytes of encapsulation
        for record, size in zip(records, sample.sizes):
            assert record.captured_length == int(size) + 42

    def test_statistics(self):
        rng = np.random.default_rng(1)
        sample = pktgen.gbps_stream(10.0, 1024, 2000, rng)
        records = pcap.synthesize_capture(sample, rng)
        stats = pcap.capture_statistics(records)
        assert stats["packets"] == 2000
        assert stats["gbps"] == pytest.approx(10.4, rel=0.1)  # + headers

    def test_empty_statistics(self):
        assert pcap.capture_statistics([])["packets"] == 0

    def test_seeded_capture_scannable(self):
        """End-to-end: synthesize an infected capture to disk, read it
        back, and let the REM engine find the plants."""
        from repro.functions.regex.rulesets import compile_ruleset, load_ruleset

        rng = np.random.default_rng(2)
        fragments = load_ruleset("file_executable").seed_fragments
        sample = pktgen.gbps_stream(1.0, 1024, 150, rng)
        records = pcap.synthesize_capture(
            sample, rng, seed_fragments=fragments, seed_probability=0.1
        )
        buffer = io.BytesIO()
        pcap.write_pcap(buffer, records)
        buffer.seek(0)
        matcher = compile_ruleset("file_executable")
        hits = sum(
            1 for record in pcap.read_pcap(buffer)
            if matcher.contains_match(record.frame[42:])
        )
        assert hits >= 5
