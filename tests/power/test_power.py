"""Tests for power models, sensors, and energy accounting."""

import numpy as np
import pytest

from repro.calibration import POWER
from repro.core import Simulator
from repro.power import (
    IDLE,
    BmcSensor,
    ComponentLoad,
    EnergyReport,
    PowerTrace,
    RiserCardSetup,
    ServerPowerModel,
    SnicPowerModel,
    YoctoWattSensor,
    efficiency_ratio,
    energy_per_request,
    validate_isolation,
)


class TestComponentLoad:
    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentLoad(host_busy_cores=-1)
        with pytest.raises(ValueError):
            ComponentLoad(accel_utilization={"rem": 1.5})

    def test_idle_constant(self):
        assert IDLE.host_busy_cores == 0.0


class TestServerPowerModel:
    def test_idle_is_252(self):
        assert ServerPowerModel().power(IDLE) == pytest.approx(252.0)

    def test_nic_server_idle_lower(self):
        """Swapping the SNIC (29 W) for a plain NIC (16 W) drops idle."""
        nic_model = ServerPowerModel(has_snic=False)
        assert nic_model.power(IDLE) == pytest.approx(252.0 - 29.0 + 16.0)

    def test_host_cores_add_power(self):
        model = ServerPowerModel()
        full = model.power(ComponentLoad(host_busy_cores=8))
        assert 330 <= full <= 252 + 151  # within the paper's active ceiling

    def test_power_monotone_in_cores(self):
        model = ServerPowerModel()
        powers = [model.power(ComponentLoad(host_busy_cores=c)) for c in range(9)]
        assert powers == sorted(powers)

    def test_ondemand_parking_saves(self):
        model = ServerPowerModel()
        parked = model.power(ComponentLoad(host_parked=True))
        assert parked == pytest.approx(252.0 - POWER.host_ondemand_savings_w)

    def test_snic_activity_visible_in_server_power(self):
        model = ServerPowerModel()
        busy = model.power(ComponentLoad(snic_busy_cores=8))
        assert busy == pytest.approx(252.0 + 8 * POWER.snic_core_active_w)


class TestSnicPowerModel:
    def test_idle_is_29(self):
        assert SnicPowerModel().power(IDLE) == pytest.approx(29.0)

    def test_active_ceiling_respects_paper(self):
        """§4: the SNIC consumes at most ~5.4 W above idle."""
        load = ComponentLoad(
            snic_busy_cores=8,
            accel_utilization={"rem": 1.0},
            accel_engaged=frozenset({"rem"}),
        )
        active = SnicPowerModel().active_power(load)
        assert 5.0 <= active <= 8.0

    def test_engaged_engine_draws_static_power(self):
        model = SnicPowerModel()
        engaged = model.power(ComponentLoad(accel_engaged=frozenset({"rem"})))
        assert engaged > 29.0


class TestSensors:
    def test_bmc_characteristics(self):
        sensor = BmcSensor()
        assert sensor.sample_hz == 1.0
        assert sensor.resolution_w == 1.0

    def test_bmc_quantizes_to_watts(self):
        sensor = BmcSensor()  # no rng -> no accuracy noise
        assert sensor.reading(252.4) == 252.0
        assert sensor.reading(252.6) == 253.0

    def test_yocto_resolution(self):
        sensor = YoctoWattSensor("12V")
        assert sensor.reading(1.2345) == pytest.approx(1.234, abs=1e-9)

    def test_sampling_rate_on_kernel(self):
        sim = Simulator()
        trace = BmcSensor().attach(sim, lambda t: 252.0, duration=10.0)
        sim.run(until=10.0)
        assert 9 <= len(trace) <= 11

    def test_yocto_samples_10x_faster(self):
        sim = Simulator()
        bmc = BmcSensor().attach(sim, lambda t: 252.0, duration=5.0)
        yocto = YoctoWattSensor("12V").attach(sim, lambda t: 5.0, duration=5.0)
        sim.run(until=5.0)
        assert len(yocto) == pytest.approx(10 * len(bmc), abs=5)

    def test_riser_card_recovers_device_power(self):
        sim = Simulator()
        rig = RiserCardSetup()
        rail_12v, rail_3v3 = rig.attach(sim, lambda t: 31.5, duration=20.0)
        sim.run(until=20.0)
        assert rig.device_power(rail_12v, rail_3v3) == pytest.approx(31.5, abs=0.01)

    def test_sensor_tracks_power_step(self):
        sim = Simulator()
        step_fn = lambda t: 252.0 if t < 5.0 else 360.0
        trace = BmcSensor().attach(sim, step_fn, duration=10.0)
        sim.run(until=10.0)
        assert min(trace.watts) == pytest.approx(252.0, abs=1.5)
        assert max(trace.watts) == pytest.approx(360.0, abs=1.5)

    def test_trace_energy(self):
        trace = PowerTrace()
        for t in range(11):
            trace.append(float(t), 100.0)
        assert trace.energy_joules() == pytest.approx(1000.0)

    def test_validate_isolation(self):
        """The paper's cross-check: (with SNIC) - (without) ~= riser value."""
        assert validate_isolation(252.0, 223.0, 29.5)
        assert not validate_isolation(252.0, 223.0, 40.0)

    def test_sensor_validation(self):
        with pytest.raises(ValueError):
            BmcSensor.__bases__[0](sample_hz=0, accuracy_w=1, resolution_w=1)


class TestEnergy:
    def test_efficiency(self):
        report = EnergyReport("x", throughput=50.0, total_power_w=250.0)
        assert report.efficiency == pytest.approx(0.2)

    def test_efficiency_ratio(self):
        host = EnergyReport("h", 10.0, 360.0)
        snic = EnergyReport("s", 35.0, 255.0)
        assert efficiency_ratio(snic, host) == pytest.approx((35 / 255) / (10 / 360))

    def test_energy_per_request(self):
        report = EnergyReport("x", throughput=1000.0, total_power_w=250.0)
        assert energy_per_request(report) == pytest.approx(0.25)

    def test_zero_throughput(self):
        report = EnergyReport("x", throughput=0.0, total_power_w=250.0)
        assert energy_per_request(report) == float("inf")
