"""Tests for the DPDK poll-mode model and RDMA verbs."""

import pytest

from repro.core import Simulator
from repro.netstack import (
    DuplexChannel,
    PollModePort,
    QueuePair,
    RdmaError,
    RdmaNic,
    RxRing,
    ip,
    run_poll_loop,
)
from repro.netstack.packet import PROTO_UDP, Packet
from repro.netstack.rdma import OpCode


def make_packet(payload=b"x"):
    return Packet(proto=PROTO_UDP, src_ip=1, src_port=1, dst_ip=2, dst_port=2,
                  payload=payload)


class TestRxRing:
    def test_fifo(self):
        ring = RxRing(4)
        for label in (b"a", b"b"):
            ring.offer(make_packet(label))
        burst = ring.poll(10)
        assert [p.payload for p in burst] == [b"a", b"b"]

    def test_tail_drop(self):
        ring = RxRing(2)
        results = [ring.offer(make_packet()) for _ in range(3)]
        assert results == [True, True, False]
        assert ring.tail_drops == 1

    def test_burst_bound(self):
        ring = RxRing(100)
        for _ in range(50):
            ring.offer(make_packet())
        assert len(ring.poll(32)) == 32
        assert len(ring) == 18

    def test_size_validation(self):
        with pytest.raises(ValueError):
            RxRing(0)


class TestPollMode:
    def test_ping_pong(self):
        """The dpu-pingpong microbenchmark shape (§3.3)."""
        sim = Simulator()
        channel = DuplexChannel(sim)
        client_port = PollModePort(sim, channel.forward)
        server_port = PollModePort(sim, channel.backward)
        channel.forward.attach(server_port.deliver)
        channel.backward.attach(client_port.deliver)

        run_poll_loop(sim, server_port, lambda p: p.reply_template(p.payload),
                      stop_after=3)
        rtts = []

        def client():
            for i in range(3):
                sent_at = sim.now
                client_port.tx_burst([
                    Packet(proto=PROTO_UDP, src_ip=1, src_port=9, dst_ip=2,
                           dst_port=9, payload=b"ping%d" % i)
                ])
                while True:
                    burst = client_port.rx_burst()
                    if burst:
                        rtts.append(sim.now - sent_at)
                        break
                    yield sim.timeout(1e-7)

        sim.process(client())
        sim.run(until=1.0)
        assert len(rtts) == 3
        assert all(0 < rtt < 1e-4 for rtt in rtts)

    def test_poll_loop_counts(self):
        sim = Simulator()
        channel = DuplexChannel(sim)
        port = PollModePort(sim, channel.forward)
        channel.forward.attach(lambda p: None)
        channel.backward.attach(port.deliver)
        for i in range(5):
            channel.backward.send(make_packet(b"p%d" % i))
        process = run_poll_loop(sim, port, lambda p: None, stop_after=5)
        sim.run(until=1.0)
        assert process.value == 5
        assert port.rx_packets == 5


class TestRdma:
    def _connected_pair(self, sim, host_bus=900e-9, snic_bus=300e-9):
        client_nic = RdmaNic(sim, 1, local_bus_latency_s=host_bus)
        server_nic = RdmaNic(sim, 2, local_bus_latency_s=snic_bus)
        qp_client = QueuePair(sim, client_nic, server_nic)
        qp_server = QueuePair(sim, server_nic, client_nic)
        qp_client.connect(qp_server)
        return client_nic, server_nic, qp_client, qp_server

    def test_one_sided_read(self):
        sim = Simulator()
        _, server_nic, qp, _ = self._connected_pair(sim)
        region = server_nic.register_memory(b"remote memory contents")
        results = []

        def reader():
            completion = yield qp.read(region.key, 7, 6)
            results.append(completion)

        sim.process(reader())
        sim.run()
        assert results[0].ok
        assert results[0].data == b"memory"

    def test_one_sided_write(self):
        sim = Simulator()
        _, server_nic, qp, _ = self._connected_pair(sim)
        region = server_nic.register_memory(16)

        def writer():
            yield qp.write(region.key, 4, b"DATA")

        sim.process(writer())
        sim.run()
        assert bytes(region.buffer[4:8]) == b"DATA"

    def test_out_of_bounds_read_fails(self):
        sim = Simulator()
        _, server_nic, qp, _ = self._connected_pair(sim)
        region = server_nic.register_memory(8)
        results = []

        def reader():
            completion = yield qp.read(region.key, 4, 100)
            results.append(completion)

        sim.process(reader())
        sim.run()
        assert not results[0].ok

    def test_unknown_rkey_fails(self):
        sim = Simulator()
        _, _, qp, _ = self._connected_pair(sim)
        results = []

        def reader():
            completion = yield qp.read(999, 0, 4)
            results.append(completion)

        sim.process(reader())
        sim.run()
        assert not results[0].ok

    def test_two_sided_send_recv(self):
        sim = Simulator()
        _, _, qp_client, qp_server = self._connected_pair(sim)
        qp_server.post_recv(wr_id=11)
        completions = []

        def receiver():
            completion = yield qp_server.poll_cq()
            completions.append(completion)

        def sender():
            ok = yield qp_client.post_send(b"rpc-request")
            completions.append(("send-ok", ok))

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        recv = [c for c in completions if isinstance(c, tuple) is False][0]
        assert recv.opcode is OpCode.RECV
        assert recv.data == b"rpc-request"
        assert recv.wr_id == 11

    def test_send_without_posted_recv_fails(self):
        sim = Simulator()
        _, _, qp_client, _ = self._connected_pair(sim)
        outcome = []

        def sender():
            ok = yield qp_client.post_send(b"dropped")
            outcome.append(ok)

        sim.process(sender())
        sim.run()
        assert outcome == [False]

    def test_unconnected_qp_raises(self):
        sim = Simulator()
        nic = RdmaNic(sim, 1)
        qp = QueuePair(sim, nic, nic)
        with pytest.raises(RdmaError):
            qp.read(1, 0, 4)

    def test_snic_side_has_lower_latency(self):
        """The paper's path asymmetry: host verbs cross PCIe (~900 ns),
        the SNIC CPU sits next to the NIC (~300 ns)."""
        sim = Simulator()
        host_nic = RdmaNic(sim, 1, local_bus_latency_s=900e-9)
        snic_nic = RdmaNic(sim, 2, local_bus_latency_s=300e-9)
        peer = RdmaNic(sim, 3, local_bus_latency_s=300e-9)
        region = peer.register_memory(64)

        def run_read(nic):
            qp_a = QueuePair(sim, nic, peer)
            qp_b = QueuePair(sim, peer, nic)
            qp_a.connect(qp_b)
            times = []

            def reader():
                start = sim.now
                yield qp_a.read(region.key, 0, 8)
                times.append(sim.now - start)

            sim.process(reader())
            sim.run()
            return times[0]

        host_latency = run_read(host_nic)
        snic_latency = run_read(snic_nic)
        assert snic_latency < host_latency
