"""Tests for TCP congestion control and adaptive RTO."""

import numpy as np
import pytest

from repro.core import Simulator
from repro.netstack import DuplexChannel, TcpEndpoint, ip
from repro.netstack.tcp import DEFAULT_SSTHRESH, INITIAL_CWND, MIN_RTO, MSS


def make_pair(sim, loss=0.0, seed=0, gbps=100.0):
    rng = np.random.default_rng(seed)
    channel = DuplexChannel(sim, gbps=gbps, loss_probability=loss, rng=rng)
    a = TcpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
    b = TcpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
    channel.forward.attach(b.deliver)
    channel.backward.attach(a.deliver)
    return a, b


def start_transfer(sim, a, b, nbytes):
    listener = b.listen(80)
    connection = a.connect(40000, ip(10, 0, 0, 2), 80)
    data = bytes(range(256)) * (nbytes // 256 + 1)
    data = data[:nbytes]
    received = []

    def server():
        conn = yield listener.accept()
        yield conn.established()
        payload = yield conn.recv(len(data))
        received.append(payload)

    def client():
        yield connection.established()
        connection.send(data)

    sim.process(server())
    sim.process(client())
    return connection, data, received


class TestCongestionWindow:
    def test_initial_window_rfc6928(self):
        sim = Simulator()
        a, b = make_pair(sim)
        connection, _, _ = start_transfer(sim, a, b, 1000)
        assert connection.cwnd == INITIAL_CWND * MSS

    def test_window_limits_in_flight(self):
        """A large send must not flood the wire: bytes in flight stay
        within cwnd at all times."""
        sim = Simulator()
        a, b = make_pair(sim)
        connection, _, _ = start_transfer(sim, a, b, 500 * MSS)
        sim.run(until=5e-4)  # mid-transfer
        assert connection.bytes_in_flight <= connection.cwnd + MSS

    def test_slow_start_doubles_window(self):
        sim = Simulator()
        a, b = make_pair(sim)
        connection, data, received = start_transfer(sim, a, b, 400 * MSS)
        sim.run(until=60.0)
        assert received and received[0] == data
        assert connection.cwnd > INITIAL_CWND * MSS  # grew during transfer

    def test_large_lossless_transfer_completes(self):
        sim = Simulator()
        a, b = make_pair(sim)
        connection, data, received = start_transfer(sim, a, b, 2000 * MSS)
        sim.run(until=120.0)
        assert received and received[0] == data
        assert connection.retransmissions == 0

    def test_timeout_collapses_window(self):
        sim = Simulator()
        a, b = make_pair(sim, loss=0.15, seed=2)
        connection, data, received = start_transfer(sim, a, b, 300 * MSS)
        sim.run(until=200.0)
        assert received and received[0] == data
        assert connection.retransmissions > 0
        assert connection.ssthresh < DEFAULT_SSTHRESH  # decrease happened

    def test_congestion_avoidance_linear_growth(self):
        """Past ssthresh, growth per ACK is ~MSS^2/cwnd, not +acked."""
        sim = Simulator()
        a, b = make_pair(sim)
        connection, _, _ = start_transfer(sim, a, b, 10 * MSS)
        connection.ssthresh = 1  # force congestion avoidance
        before = connection.cwnd
        connection._grow_cwnd(MSS)
        assert connection.cwnd - before <= MSS


class TestAdaptiveRto:
    def test_rto_adapts_to_path_rtt(self):
        """After samples on a microsecond-scale path, the RTO should fall
        from its conservative default toward the RTT scale."""
        sim = Simulator()
        a, b = make_pair(sim)
        connection, data, received = start_transfer(sim, a, b, 200 * MSS)
        sim.run(until=60.0)
        assert received
        assert connection.rto <= 20e-3
        assert connection.rto >= MIN_RTO

    def test_srtt_tracks_wire_latency(self):
        sim = Simulator()
        a, b = make_pair(sim)
        connection, data, received = start_transfer(sim, a, b, 100 * MSS)
        sim.run(until=60.0)
        assert received
        # propagation 500ns each way + serialization; srtt ~ microseconds
        assert 5e-7 < connection._srtt < 5e-3

    def test_backoff_on_repeated_loss(self):
        sim = Simulator()
        a, b = make_pair(sim, loss=0.35, seed=4)
        connection, data, received = start_transfer(sim, a, b, 50 * MSS)
        sim.run(until=400.0)
        assert received and received[0] == data  # still exactly-once

    def test_karns_rule_skips_retransmitted_samples(self):
        """Retransmitted segments must not poison the RTT estimate: after
        a retransmission storm the srtt stays near the real RTT, not the
        RTO scale."""
        sim = Simulator()
        a, b = make_pair(sim, loss=0.2, seed=6)
        connection, data, received = start_transfer(sim, a, b, 200 * MSS)
        sim.run(until=400.0)
        assert received
        if connection._srtt is not None:
            assert connection._srtt < 5e-3
