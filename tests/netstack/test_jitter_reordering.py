"""Tests for link jitter and TCP's behaviour under packet reordering."""

import numpy as np
import pytest

from repro.core import Simulator
from repro.netstack import DuplexChannel, Link, TcpEndpoint, ip
from repro.netstack.packet import PROTO_UDP, Packet


def make_packet(i):
    return Packet(proto=PROTO_UDP, src_ip=1, src_port=1, dst_ip=2, dst_port=2,
                  payload=b"p%03d" % i, packet_id=i)


class TestLinkJitter:
    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            Link(Simulator(), jitter_s=1e-6)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), jitter_s=-1.0, rng=np.random.default_rng(0))

    def test_jitter_reorders_packets(self):
        sim = Simulator()
        link = Link(sim, propagation_s=0.0, jitter_s=50e-6,
                    rng=np.random.default_rng(3))
        order = []
        link.attach(lambda p: order.append(p.packet_id))
        for i in range(50):
            link.send(make_packet(i))
        sim.run()
        assert len(order) == 50
        assert order != sorted(order)  # something arrived out of order

    def test_no_jitter_preserves_order(self):
        sim = Simulator()
        link = Link(sim, propagation_s=0.0)
        order = []
        link.attach(lambda p: order.append(p.packet_id))
        for i in range(50):
            link.send(make_packet(i))
        sim.run()
        assert order == sorted(order)


class TestTcpUnderReordering:
    def _transfer(self, jitter_s, seed=0, nbytes=40_000, until=30.0):
        sim = Simulator()
        rng = np.random.default_rng(seed)
        channel = DuplexChannel(sim, jitter_s=jitter_s, rng=rng)
        a = TcpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
        b = TcpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
        channel.forward.attach(b.deliver)
        channel.backward.attach(a.deliver)
        listener = b.listen(80)
        connection = a.connect(40000, ip(10, 0, 0, 2), 80)
        data = bytes(range(256)) * (nbytes // 256)
        received = []

        def server():
            conn = yield listener.accept()
            yield conn.established()
            received.append((yield conn.recv(len(data))))

        def client():
            yield connection.established()
            connection.send(data)

        sim.process(server())
        sim.process(client())
        sim.run(until=until)
        return data, received, connection

    @pytest.mark.parametrize("seed", [1, 2])
    def test_reordered_segments_reassemble_in_order(self, seed):
        data, received, _ = self._transfer(jitter_s=30e-6, seed=seed)
        assert received and received[0] == data

    def test_heavy_jitter_with_loss(self):
        sim_data = None
        sim = Simulator()
        rng = np.random.default_rng(9)
        channel = DuplexChannel(sim, jitter_s=50e-6, loss_probability=0.05,
                                rng=rng)
        a = TcpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
        b = TcpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
        channel.forward.attach(b.deliver)
        channel.backward.attach(a.deliver)
        listener = b.listen(80)
        connection = a.connect(40000, ip(10, 0, 0, 2), 80)
        data = bytes(range(256)) * 100
        received = []

        def server():
            conn = yield listener.accept()
            yield conn.established()
            received.append((yield conn.recv(len(data))))

        def client():
            yield connection.established()
            connection.send(data)

        sim.process(server())
        sim.process(client())
        sim.run(until=120.0)
        assert received and received[0] == data  # exactly-once, in order
