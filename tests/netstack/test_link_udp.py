"""Tests for the link model and UDP endpoints."""

import numpy as np
import pytest

from repro.core import Simulator
from repro.netstack import DuplexChannel, Link, UdpEndpoint, ip, run_echo_server
from repro.netstack.packet import PROTO_UDP, Packet, format_ip


def make_packet(payload=b"x", dst_port=7):
    return Packet(
        proto=PROTO_UDP, src_ip=ip(10, 0, 0, 1), src_port=1234,
        dst_ip=ip(10, 0, 0, 2), dst_port=dst_port, payload=payload,
    )


class TestPacketModel:
    def test_ip_helpers_roundtrip(self):
        address = ip(192, 168, 1, 42)
        assert format_ip(address) == "192.168.1.42"

    def test_ip_octet_validation(self):
        with pytest.raises(ValueError):
            ip(300, 0, 0, 1)

    def test_wire_bytes_has_minimum_frame(self):
        packet = make_packet(b"")
        assert packet.wire_bytes == 64

    def test_wire_bytes_includes_headers(self):
        packet = make_packet(b"z" * 1000)
        assert packet.wire_bytes == 14 + 20 + 8 + 1000

    def test_reply_template_swaps_direction(self):
        packet = make_packet()
        reply = packet.reply_template(b"pong")
        assert reply.dst_ip == packet.src_ip
        assert reply.src_port == packet.dst_port
        assert reply.payload == b"pong"


class TestLink:
    def test_delivery_latency(self):
        sim = Simulator()
        link = Link(sim, gbps=100.0, propagation_s=1e-6)
        arrivals = []
        link.attach(lambda p: arrivals.append(sim.now))
        link.send(make_packet(b"x" * 958))  # 1000B frame -> 80ns at 100G
        sim.run()
        assert arrivals[0] == pytest.approx(1e-6 + 1000 * 8 / 100e9)

    def test_serialization_is_fifo(self):
        sim = Simulator()
        link = Link(sim, gbps=0.001, propagation_s=0.0)  # slow link
        order = []
        link.attach(lambda p: order.append(p.payload))
        link.send(make_packet(b"a"))
        link.send(make_packet(b"b"))
        sim.run()
        assert order == [b"a", b"b"]
        # second packet waits for the first's serialization
        assert link.delivered == 2

    def test_loss(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        link = Link(sim, loss_probability=0.5, rng=rng)
        link.attach(lambda p: None)
        for _ in range(200):
            link.send(make_packet())
        sim.run()
        assert 40 < link.lost < 160

    def test_requires_receiver(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(RuntimeError):
            link.send(make_packet())

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, gbps=0)
        with pytest.raises(ValueError):
            Link(sim, loss_probability=1.5)


class TestUdp:
    def _pair(self, sim, **channel_kwargs):
        channel = DuplexChannel(sim, **channel_kwargs)
        client = UdpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
        server = UdpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
        channel.forward.attach(server.deliver)
        channel.backward.attach(client.deliver)
        return client, server

    def test_echo(self):
        sim = Simulator()
        client, server = self._pair(sim)
        server_socket = server.bind(7)
        client_socket = client.bind(5555)
        run_echo_server(sim, server_socket, count=2)
        replies = []

        def client_proc():
            for label in (b"one", b"two"):
                client_socket.sendto(label, ip(10, 0, 0, 2), 7)
                packet = yield client_socket.recv()
                replies.append(packet.payload)

        sim.process(client_proc())
        sim.run()
        assert replies == [b"one", b"two"]

    def test_unbound_port_drops(self):
        sim = Simulator()
        client, server = self._pair(sim)
        client_socket = client.bind(5555)
        client_socket.sendto(b"x", ip(10, 0, 0, 2), 9999)
        sim.run()
        assert server.dropped_no_socket == 1

    def test_double_bind_rejected(self):
        sim = Simulator()
        client, _ = self._pair(sim)
        client.bind(5555)
        with pytest.raises(OSError):
            client.bind(5555)

    def test_receive_queue_overflow(self):
        sim = Simulator()
        client, server = self._pair(sim)
        server.receive_queue_packets = 4
        server_socket = server.bind(7)
        client_socket = client.bind(5555)
        for _ in range(10):
            client_socket.sendto(b"x", ip(10, 0, 0, 2), 7)
        sim.run()
        assert server_socket.queued == 4
        assert server_socket.overflow_drops == 6

    def test_echo_transform(self):
        sim = Simulator()
        client, server = self._pair(sim)
        server_socket = server.bind(7)
        client_socket = client.bind(5555)
        run_echo_server(sim, server_socket, transform=bytes.upper, count=1)
        replies = []

        def client_proc():
            client_socket.sendto(b"hello", ip(10, 0, 0, 2), 7)
            packet = yield client_socket.recv()
            replies.append(packet.payload)

        sim.process(client_proc())
        sim.run()
        assert replies == [b"HELLO"]
