"""Tests for the TCP state machine: handshake, transfer, loss recovery,
teardown."""

import numpy as np
import pytest

from repro.core import Simulator
from repro.netstack import DuplexChannel, TcpEndpoint, TcpState, ip


def make_pair(sim, loss=0.0, seed=0):
    rng = np.random.default_rng(seed)
    channel = DuplexChannel(sim, loss_probability=loss, rng=rng)
    a = TcpEndpoint(sim, ip(10, 0, 0, 1), channel.forward)
    b = TcpEndpoint(sim, ip(10, 0, 0, 2), channel.backward)
    channel.forward.attach(b.deliver)
    channel.backward.attach(a.deliver)
    return a, b


def transfer(sim, a, b, data, until=30.0):
    listener = b.listen(80)
    connection = a.connect(40000, ip(10, 0, 0, 2), 80)
    received = []

    def server():
        conn = yield listener.accept()
        yield conn.established()
        payload = yield conn.recv(len(data))
        received.append(payload)

    def client():
        yield connection.established()
        connection.send(data)

    sim.process(server())
    sim.process(client())
    sim.run(until=until)
    return connection, received


class TestHandshake:
    def test_three_way_handshake(self):
        sim = Simulator()
        a, b = make_pair(sim)
        listener = b.listen(80)
        connection = a.connect(40000, ip(10, 0, 0, 2), 80)
        accepted = []

        def server():
            conn = yield listener.accept()
            yield conn.established()
            accepted.append(conn)

        sim.process(server())
        sim.run(until=1.0)
        assert connection.state is TcpState.ESTABLISHED
        assert accepted and accepted[0].state is TcpState.ESTABLISHED

    def test_double_listen_rejected(self):
        sim = Simulator()
        _, b = make_pair(sim)
        b.listen(80)
        with pytest.raises(OSError):
            b.listen(80)

    def test_send_before_established_rejected(self):
        sim = Simulator()
        a, b = make_pair(sim)
        b.listen(80)
        connection = a.connect(40000, ip(10, 0, 0, 2), 80)
        with pytest.raises(OSError):
            connection.send(b"too early")


class TestTransfer:
    def test_small_message(self):
        sim = Simulator()
        a, b = make_pair(sim)
        _, received = transfer(sim, a, b, b"hello tcp")
        assert received == [b"hello tcp"]

    def test_multi_segment_message(self):
        sim = Simulator()
        a, b = make_pair(sim)
        data = bytes(range(256)) * 40  # ~10 KB, 7 segments
        _, received = transfer(sim, a, b, data)
        assert received == [data]

    def test_no_retransmissions_without_loss(self):
        sim = Simulator()
        a, b = make_pair(sim)
        connection, _ = transfer(sim, a, b, b"x" * 5000)
        assert connection.retransmissions == 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lossy_link_delivers_exactly_once(self, seed):
        sim = Simulator()
        a, b = make_pair(sim, loss=0.1, seed=seed)
        data = bytes(range(256)) * 40
        connection, received = transfer(sim, a, b, data)
        assert received == [data]

    def test_heavy_loss_still_recovers(self):
        sim = Simulator()
        a, b = make_pair(sim, loss=0.25, seed=5)
        data = b"important" * 500
        connection, received = transfer(sim, a, b, data, until=120.0)
        assert received == [data]
        assert connection.retransmissions > 0


class TestTeardown:
    def test_fin_exchange_closes_both(self):
        sim = Simulator()
        a, b = make_pair(sim)
        listener = b.listen(80)
        connection = a.connect(40000, ip(10, 0, 0, 2), 80)
        states = {}

        def server():
            conn = yield listener.accept()
            yield conn.established()
            yield conn.recv(4)
            conn.close()  # passive close after active side's FIN arrives
            yield conn.closed()
            states["server"] = conn.state

        def client():
            yield connection.established()
            connection.send(b"data")
            yield sim.timeout(0.1)
            connection.close()
            yield connection.closed()
            states["client"] = connection.state

        sim.process(server())
        sim.process(client())
        sim.run(until=5.0)
        assert states.get("client") is TcpState.CLOSED
        assert states.get("server") is TcpState.CLOSED


class TestRequestResponse:
    def test_echo_service_over_tcp(self):
        """A Redis-shaped interaction: request, server transforms, reply."""
        sim = Simulator()
        a, b = make_pair(sim)
        listener = b.listen(6379)
        connection = a.connect(40000, ip(10, 0, 0, 2), 6379)
        replies = []

        def server():
            conn = yield listener.accept()
            yield conn.established()
            request = yield conn.recv(5)
            conn.send(request.upper())

        def client():
            yield connection.established()
            connection.send(b"hello")
            reply = yield connection.recv(5)
            replies.append(reply)

        sim.process(server())
        sim.process(client())
        sim.run(until=5.0)
        assert replies == [b"HELLO"]
