"""Tests for link fault models: closed-interval loss, bursty loss, flaps."""

import numpy as np
import pytest

from repro.core import Simulator
from repro.netstack.link import GilbertElliottLoss, Link
from repro.netstack.packet import PROTO_UDP, Packet


def make_packet() -> Packet:
    return Packet(proto=PROTO_UDP, src_ip=1, src_port=1, dst_ip=2, dst_port=2,
                  payload=b"x" * 64)


class TestLossValidation:
    def test_full_loss_is_expressible(self):
        """Regression: loss_probability=1.0 used to be rejected, so a fully
        dead link could not be modeled."""
        sim = Simulator()
        link = Link(sim, loss_probability=1.0, rng=np.random.default_rng(0))
        link.attach(lambda p: pytest.fail("dead link delivered a packet"))
        for _ in range(50):
            link.send(make_packet())
        sim.run()
        assert link.lost == 50
        assert link.delivered == 0

    def test_out_of_range_still_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, loss_probability=1.5)
        with pytest.raises(ValueError):
            Link(sim, loss_probability=-0.1)


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=1.5, p_bad_to_good=0.1)

    def test_steady_state_loss(self):
        model = GilbertElliottLoss(p_good_to_bad=0.01, p_bad_to_good=0.09,
                                   loss_bad=1.0)
        assert model.steady_state_loss == pytest.approx(0.1)

    def test_losses_cluster_into_bursts(self):
        """The point of the model: loss runs are much longer than i.i.d.
        Bernoulli at the same average loss rate would produce."""
        rng = np.random.default_rng(42)
        model = GilbertElliottLoss(p_good_to_bad=0.005, p_bad_to_good=0.05)
        outcomes = [model.lost(rng) for _ in range(50_000)]
        loss_rate = np.mean(outcomes)
        assert 0.02 < loss_rate < 0.25

        runs, current = [], 0
        for lost in outcomes:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        # Mean burst length ~ 1/p_bad_to_good >> 1 (i.i.d. would be ~1).
        assert np.mean(runs) > 3.0

    def test_link_uses_loss_model(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        model = GilbertElliottLoss(p_good_to_bad=0.5, p_bad_to_good=0.1)
        link = Link(sim, rng=rng, loss_model=model)
        link.attach(lambda p: None)
        for _ in range(500):
            link.send(make_packet())
        sim.run()
        assert link.lost > 100
        assert link.delivered == 500 - link.lost

    def test_loss_model_requires_rng(self):
        sim = Simulator()
        model = GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.1)
        with pytest.raises(ValueError):
            Link(sim, loss_model=model)


class TestLinkFlap:
    def test_set_down_drops_and_counts(self):
        sim = Simulator()
        received = []
        link = Link(sim)
        link.attach(received.append)
        link.send(make_packet())
        link.set_down(True)
        link.send(make_packet())
        link.send(make_packet())
        link.set_down(False)
        link.send(make_packet())
        sim.run()
        assert len(received) == 2
        assert link.flap_lost == 2
        assert link.lost == 2
