"""ECN regression tests: marked flows must actually back off.

The mark-on-enqueue seam (``Link.on_enqueue``) lets these tests install
trivial markers directly — no fabric, no monkeypatching of link
internals — and assert the RFC 3168 machinery end to end: CE on a data
segment, ECE echoed on ACKs, a multiplicative window cut at the sender
(at most once per window), and CWR clearing the echo.
"""

import numpy as np

from repro.core import Simulator
from repro.netstack import DuplexChannel, TcpEndpoint, ip
from repro.netstack.tcp import INITIAL_CWND, MSS


def make_ecn_pair(sim, gbps=100.0, ecn=True):
    channel = DuplexChannel(sim, gbps=gbps)
    a = TcpEndpoint(sim, ip(10, 0, 0, 1), channel.forward, ecn=ecn)
    b = TcpEndpoint(sim, ip(10, 0, 0, 2), channel.backward, ecn=ecn)
    channel.forward.attach(b.deliver)
    channel.backward.attach(a.deliver)
    return a, b, channel


def start_transfer(sim, a, b, nbytes):
    listener = b.listen(80)
    connection = a.connect(40000, ip(10, 0, 0, 2), 80)
    data = (bytes(range(256)) * (nbytes // 256 + 1))[:nbytes]
    received = []

    def server():
        conn = yield listener.accept()
        yield conn.established()
        payload = yield conn.recv(len(data))
        received.append(payload)

    def client():
        yield connection.established()
        connection.send(data)

    sim.process(server())
    sim.process(client())
    return connection, data, received


def mark_every(n):
    """An enqueue hook that CE-marks every n-th ECN-capable packet."""
    state = {"count": 0}

    def hook(packet, depth_bytes):
        if packet.ecn_capable:
            state["count"] += 1
            if state["count"] % n == 0:
                packet.ce = True
        return True

    return hook


class TestEcnBackoff:
    def test_marked_flow_backs_off(self):
        """CE marks must shrink the window below the lossless baseline."""
        sim = Simulator()
        a, b, channel = make_ecn_pair(sim)
        channel.forward.on_enqueue = mark_every(20)
        connection, data, received = start_transfer(sim, a, b, 400 * MSS)
        sim.run(until=60.0)
        assert received and received[0] == data  # delivery still exact
        assert connection.ecn_responses > 0

        # Baseline: identical transfer, no marking — window grows freely.
        sim2 = Simulator()
        a2, b2, _ = make_ecn_pair(sim2)
        baseline, data2, received2 = start_transfer(sim2, a2, b2, 400 * MSS)
        sim2.run(until=60.0)
        assert received2 and received2[0] == data2
        assert baseline.ecn_responses == 0
        assert connection.cwnd < baseline.cwnd

    def test_no_marks_no_response(self):
        sim = Simulator()
        a, b, _ = make_ecn_pair(sim)
        connection, data, received = start_transfer(sim, a, b, 100 * MSS)
        sim.run(until=60.0)
        assert received and received[0] == data
        assert connection.ecn_responses == 0
        assert connection.retransmissions == 0

    def test_backoff_at_most_once_per_window(self):
        """The receiver echoes ECE on every ACK until CWR arrives; the
        sender must collapse those repeats into one reduction per window
        of data, not one per ACK."""
        sim = Simulator()
        a, b, channel = make_ecn_pair(sim)
        channel.forward.on_enqueue = mark_every(2)  # aggressive marking
        connection, data, received = start_transfer(sim, a, b, 200 * MSS)
        sim.run(until=60.0)
        assert received and received[0] == data
        # 100+ segments marked at every-2nd cadence, but reductions are
        # bounded by the number of windows, far below the mark count.
        receiver = next(iter(b.connections.values()))
        assert receiver.ecn_marks_seen > connection.ecn_responses
        assert 0 < connection.ecn_responses < receiver.ecn_marks_seen // 2
        # halving floor: the window never collapses below two segments
        assert connection.cwnd >= 2 * MSS

    def test_mark_without_ecn_flows_is_inert(self):
        """Non-ECN traffic never carries ECT, so the marker never fires
        and the transfer behaves exactly like the unmarked baseline."""
        sim = Simulator()
        a, b, channel = make_ecn_pair(sim, ecn=False)
        channel.forward.on_enqueue = mark_every(1)
        connection, data, received = start_transfer(sim, a, b, 100 * MSS)
        sim.run(until=60.0)
        assert received and received[0] == data
        assert connection.ecn_responses == 0
        receiver = next(iter(b.connections.values()))
        assert receiver.ecn_marks_seen == 0

    def test_enqueue_hook_can_tail_drop(self):
        """Returning False from the seam drops the packet; TCP recovers
        by retransmission and the drop is accounted as queue loss."""
        sim = Simulator()
        a, b, channel = make_ecn_pair(sim)
        state = {"count": 0}

        def drop_every_30th(packet, depth_bytes):
            if packet.ecn_capable:
                state["count"] += 1
                if state["count"] % 30 == 0:
                    return False
            return True

        channel.forward.on_enqueue = drop_every_30th
        connection, data, received = start_transfer(sim, a, b, 100 * MSS)
        sim.run(until=120.0)
        assert received and received[0] == data
        assert channel.forward.queue_lost > 0
        assert connection.retransmissions > 0

    def test_queue_depth_reflects_backlog(self):
        """The depth the hook sees grows while a burst serializes."""
        sim = Simulator()
        a, b, channel = make_ecn_pair(sim, gbps=1.0)  # slow link: backlog
        depths = []

        def record(packet, depth_bytes):
            depths.append(depth_bytes)
            return True

        channel.forward.on_enqueue = record
        connection, data, received = start_transfer(sim, a, b, 40 * MSS)
        sim.run(until=60.0)
        assert received and received[0] == data
        assert max(depths) > MSS  # a real backlog was observed
        assert min(depths) == 0.0
